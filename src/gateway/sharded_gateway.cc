#include "src/gateway/sharded_gateway.h"

#include <algorithm>
#include <thread>

#include "src/base/log.h"

namespace potemkin {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

uint32_t DefaultGatewayShards() {
  const uint32_t cores = std::max(1u, std::thread::hardware_concurrency());
  uint32_t shards = 1;
  while (shards * 2 <= std::min(cores, 8u)) {
    shards *= 2;
  }
  return shards;
}

ShardedGateway::ShardedGateway(EventLoop* loop,
                               const ShardedGatewayConfig& config,
                               GatewayBackend* backend)
    : mode_(Mode::kSharedLoop) {
  PK_CHECK(IsPowerOfTwo(config.shard_count))
      << "shard_count must be a power of two, got " << config.shard_count;
  shared_loop_ = loop;
  BuildShards(config, loop, backend, {});
  if (shard_count() > 1) {
    RegisterAggregateProbes(ObsOrDefault(config.gateway.obs).metrics);
  }
}

ShardedGateway::ShardedGateway(const ShardedGatewayConfig& config,
                               std::vector<GatewayBackend*> backends)
    : mode_(Mode::kPartitioned) {
  PK_CHECK(IsPowerOfTwo(config.shard_count))
      << "shard_count must be a power of two, got " << config.shard_count;
  PK_CHECK(backends.size() == config.shard_count)
      << "partitioned mode needs one backend per shard";
  BuildShards(config, nullptr, nullptr, backends);
}

ShardedGateway::~ShardedGateway() {
  if (aggregate_registry_ != nullptr) {
    aggregate_registry_->RemoveProbes(this);
  }
  // Member destruction runs in reverse declaration order, which would destroy
  // the per-shard obs bundles before the Gateways whose destructors
  // deregister probes from them; tear the shards down first explicitly.
  shards_.clear();
  // Same hazard for the rings: pools_ is declared after rings_ (destroyed
  // first), and an undrained Handoff still holds a Packet whose pool may be a
  // per-shard pool — recycle those buffers while the pools are alive.
  rings_.clear();
  // And for unflushed egress bins, whose packets recycle into per-shard pools.
  egress_bins_.clear();
}

void ShardedGateway::BuildShards(const ShardedGatewayConfig& config,
                                 EventLoop* shared_loop,
                                 GatewayBackend* shared_backend,
                                 const std::vector<GatewayBackend*>& backends) {
  const uint32_t n = config.shard_count;
  rings_.reserve(static_cast<size_t>(n) * n);
  for (size_t i = 0; i < static_cast<size_t>(n) * n; ++i) {
    rings_.push_back(
        std::make_unique<SpscRing<Handoff>>(config.handoff_ring_capacity));
  }
  partition_ = std::make_unique<std::atomic<bool>[]>(
      static_cast<size_t>(n) * n);
  for (size_t i = 0; i < static_cast<size_t>(n) * n; ++i) {
    partition_[i].store(false, std::memory_order_relaxed);
  }
  egress_bins_.resize(n);
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GatewayConfig shard_config = config.gateway;
    shard_config.shard_id = i;
    shard_config.shard_count = n;
    if (n > 1) {
      // Each shard's detector only sees the distinct destinations the shard
      // owns (~1/n of a farm-wide spray), so rescale the threshold to keep
      // farm-wide flagging latency comparable to an unsharded gateway. See
      // ShardedGatewayConfig::gateway for the trade-off.
      shard_config.scan_detector.distinct_threshold = std::max<uint32_t>(
          1, config.gateway.scan_detector.distinct_threshold / n);
    }
    EventLoop* loop = shared_loop;
    GatewayBackend* backend = shared_backend;
    if (mode_ == Mode::kPartitioned) {
      loops_.push_back(std::make_unique<EventLoop>());
      obs_.push_back(std::make_unique<Observability>());
      pools_.push_back(std::make_unique<PacketPool>());
      shard_config.obs = obs_.back().get();
      loop = loops_.back().get();
      backend = backends[i];
    }
    shards_.push_back(std::make_unique<Gateway>(loop, shard_config, backend));
    if (config.reserve_bindings_per_shard > 0) {
      shards_.back()->bindings().Reserve(config.reserve_bindings_per_shard);
    }
  }
  if (n > 1) {
    for (uint32_t i = 0; i < n; ++i) {
      InstallHandoff(i);
    }
    // Handoff-fabric distributions, one handle per consuming shard. The
    // names are farm-wide: in shared-loop mode all handles alias one cell
    // block; in partitioned mode each shard registry owns its own block and
    // Stats()/snapshot merges stay per-registry.
    for (uint32_t i = 0; i < n; ++i) {
      MetricRegistry& m = mode_ == Mode::kPartitioned
                              ? obs_[i]->metrics
                              : ObsOrDefault(config.gateway.obs).metrics;
      m_ring_occupancy_.push_back(
          m.RegisterLatency("gateway.handoff.ring_occupancy", "packets"));
      m_ring_batch_.push_back(
          m.RegisterLatency("gateway.handoff.batch_packets", "packets"));
    }
  }
}

void ShardedGateway::InstallHandoff(uint32_t from) {
  if (mode_ == Mode::kSharedLoop) {
    shards_[from]->set_shard_handoff(
        [this, from](Packet packet, uint32_t to,
                     const Gateway::HandoffContext& ctx) {
          in_flight_.fetch_add(1);
          Handoff handoff{std::move(packet), ctx};
          while (!RingTo(from, to).TryPush(std::move(handoff))) {
            if (PartitionCut(from, to)) {
              // Partition with a full ring: the fabric's bounded buffer
              // overflowed while the path was cut. Drop (the packet recycles
              // when `handoff` destructs) — draining would tunnel through
              // the cut, and retrying would spin forever.
              in_flight_.fetch_sub(1);
              partition_drops_.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            // Ring full: drain the destination's inbox first so the
            // overflowing packet keeps its per-pair FIFO position (inline
            // delivery would let it jump ahead of packets already queued),
            // then retry into the emptied ring. Single-threaded, and
            // deliveries are one-hop bounded — once handed off, the
            // destination is owned and cannot hand off again — so the drain
            // frees slots and the retry terminates.
            DrainIncoming(to);
          }
          // Drain immediately so shared-loop execution order is a pure
          // function of the traffic (no-op when a pump is already running).
          PumpHandoffs();
        });
    return;
  }
  shards_[from]->set_shard_handoff(
      [this, from](Packet packet, uint32_t to,
                   const Gateway::HandoffContext& ctx) {
        in_flight_.fetch_add(1);
        Handoff handoff{std::move(packet), ctx};
        while (!RingTo(from, to).TryPush(std::move(handoff))) {
          if (PartitionCut(from, to)) {
            in_flight_.fetch_sub(1);
            partition_drops_.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          if (parallel_active_.load(std::memory_order_relaxed)) {
            // Backpressure without deadlock: the peer may itself be blocked
            // pushing toward us, so make progress on our own inbox and retry.
            DrainIncoming(from);
            std::this_thread::yield();
          } else {
            // Single-threaded partitioned driver owns every ring: drain the
            // destination (preserving per-pair FIFO) and retry.
            DrainIncoming(to);
          }
        }
      });
}

size_t ShardedGateway::DrainIncoming(uint32_t to) {
  size_t delivered = 0;
  const uint32_t n = shard_count();
  for (uint32_t from = 0; from < n; ++from) {
    if (from == to || PartitionCut(from, to)) {
      continue;  // a cut path's queue stalls in the ring until healed
    }
    SpscRing<Handoff>& ring = RingTo(from, to);
    // Depth seen by the consumer before draining: how far ahead the producer
    // shard ran. Sampled only when the drain actually pops (an empty ring has
    // no event worth a histogram row, and the idle sweep would swamp p50).
    const uint64_t occupancy = ring.SizeApprox();
    size_t popped = 0;
    Handoff handoff;
    while (ring.TryPop(&handoff)) {
      if (mode_ == Mode::kPartitioned) {
        // Adopt into the consuming shard's pool so the eventual Release never
        // races another thread's freelist.
        handoff.packet.set_pool(pools_[to].get());
      }
      shards_[to]->HandleHandoff(std::move(handoff.packet), handoff.ctx);
      in_flight_.fetch_sub(1);
      ++popped;
    }
    if (popped > 0) {
      m_ring_occupancy_[to].Record(occupancy);
      m_ring_batch_[to].Record(popped);
      delivered += popped;
    }
  }
  return delivered;
}

size_t ShardedGateway::PumpHandoffs() {
  if (pumping_) {
    return 0;  // the outermost pump will pick up anything we enqueued
  }
  pumping_ = true;
  size_t total = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (uint32_t to = 0; to < shard_count(); ++to) {
      const size_t delivered = DrainIncoming(to);
      if (delivered > 0) {
        total += delivered;
        progress = true;  // deliveries may have produced fresh handoffs
      }
    }
  }
  pumping_ = false;
  return total;
}

void ShardedGateway::HandleInbound(Packet packet) {
  if (shard_count() == 1) {
    shards_[0]->HandleInbound(std::move(packet));
    return;
  }
  const auto dst = PeekIpv4Dst(packet);
  // Un-peekable frames go to shard 0, whose full parse rejects them exactly
  // as an unsharded gateway would.
  const uint32_t s = dst.has_value() ? ShardOf(*dst) : 0;
  shards_[s]->HandleInbound(std::move(packet));
  PumpHandoffs();
}

void ShardedGateway::HandleInboundBatch(std::span<Packet> packets) {
  if (shard_count() == 1) {
    shards_[0]->HandleInboundBatch(packets);
    return;
  }
  const uint32_t n = shard_count();
  batch_bins_.resize(n);
  for (auto& bin : batch_bins_) {
    bin.clear();  // capacity retained: steady-state bursts allocate nothing
  }
  for (auto& packet : packets) {
    const auto dst = PeekIpv4Dst(packet);
    const uint32_t s = dst.has_value() ? ShardOf(*dst) : 0;
    batch_bins_[s].push_back(std::move(packet));
  }
  for (uint32_t s = 0; s < n; ++s) {
    if (!batch_bins_[s].empty()) {
      shards_[s]->HandleInboundBatch(batch_bins_[s]);
    }
  }
  PumpHandoffs();
}

void ShardedGateway::HandleOutbound(HostId host, VmId vm, Packet packet) {
  if (shard_count() == 1) {
    shards_[0]->HandleOutbound(host, vm, std::move(packet));
    return;
  }
  // Outbound shards by source: that is the transmitting VM's address, and its
  // binding (infection flag, session) lives on the shard that owns it.
  const auto src = PeekIpv4Src(packet);
  const uint32_t s = src.has_value() ? ShardOf(*src) : 0;
  shards_[s]->HandleOutbound(host, vm, std::move(packet));
  PumpHandoffs();
}

void ShardedGateway::NotifyInfected(Ipv4Address vm_ip) {
  shards_[ShardOf(vm_ip)]->NotifyInfected(vm_ip);
}

void ShardedGateway::StartRecycling() {
  for (auto& shard : shards_) {
    shard->StartRecycling();
  }
}

size_t ShardedGateway::SweepOnce() {
  size_t retired = 0;
  for (auto& shard : shards_) {
    retired += shard->SweepOnce();
  }
  PumpHandoffs();
  return retired;
}

size_t ShardedGateway::ReclaimMostIdle(size_t batch) {
  if (batch == 0) {
    return 0;
  }
  // Ceil-divide so the farm-wide total is at least `batch` when the load is
  // spread; a shard with fewer idle VMs than its share just retires fewer.
  const size_t per_shard = (batch + shards_.size() - 1) / shards_.size();
  size_t retired = 0;
  for (auto& shard : shards_) {
    retired += shard->ReclaimMostIdle(per_shard);
  }
  PumpHandoffs();
  return retired;
}

void ShardedGateway::set_egress_sink(Gateway::EgressSink sink) {
  if (mode_ == Mode::kSharedLoop) {
    // Inline delivery, deterministic: the Honeyfarm's egress hook (seed
    // handshakes, worm monitors) relies on seeing the packet synchronously.
    for (auto& shard : shards_) {
      shard->set_egress_sink(sink);
    }
    return;
  }
  // Partitioned: shard s appends to its own bin — no cross-thread contention
  // on the user callback — and `sink` becomes the merge facade.
  merged_egress_ = std::move(sink);
  for (uint32_t s = 0; s < shard_count(); ++s) {
    shards_[s]->set_egress_sink(
        [this, s](Packet packet) { egress_bins_[s].push_back(std::move(packet)); });
  }
}

void ShardedGateway::set_shard_egress_sink(uint32_t i,
                                           Gateway::EgressSink sink) {
  PK_CHECK(mode_ == Mode::kPartitioned);
  shards_[i]->set_egress_sink(std::move(sink));
}

size_t ShardedGateway::FlushEgress() {
  if (merged_egress_ == nullptr) {
    size_t dropped = 0;
    for (auto& bin : egress_bins_) {
      dropped += bin.size();
      bin.clear();  // recycle: egress with no sink is discarded, as before
    }
    return dropped;
  }
  size_t delivered = 0;
  for (auto& bin : egress_bins_) {
    for (auto& packet : bin) {
      merged_egress_(std::move(packet));
      ++delivered;
    }
    bin.clear();
  }
  return delivered;
}

size_t ShardedGateway::CountHostBindings(HostId host) {
  size_t total = 0;
  for (auto& shard : shards_) {
    total += shard->CountHostBindings(host);
  }
  return total;
}

size_t ShardedGateway::RetireHostBindings(HostId host) {
  size_t total = 0;
  for (auto& shard : shards_) {
    total += shard->RetireHostBindings(host);
  }
  PumpHandoffs();
  return total;
}

size_t ShardedGateway::InvalidateHostBindings(HostId host) {
  size_t total = 0;
  for (auto& shard : shards_) {
    total += shard->InvalidateHostBindings(host);
  }
  return total;
}

size_t ShardedGateway::MigrateHostBindings(HostId host, size_t max) {
  size_t started = 0;
  for (auto& shard : shards_) {
    if (started >= max) {
      break;
    }
    started += shard->MigrateHostBindings(host, max - started);
  }
  PumpHandoffs();
  return started;
}

size_t ShardedGateway::CountMisplacedReflectNat() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->CountMisplacedReflectNat();
  }
  return total;
}

void ShardedGateway::SetHandoffPartition(uint32_t from, uint32_t to,
                                         bool cut) {
  PK_CHECK(from < shard_count() && to < shard_count() && from != to);
  partition_[from * shards_.size() + to].store(cut, std::memory_order_relaxed);
}

EventLoop& ShardedGateway::shard_loop(uint32_t i) {
  PK_CHECK(mode_ == Mode::kPartitioned);
  return *loops_[i];
}

Observability& ShardedGateway::shard_obs(uint32_t i) {
  PK_CHECK(mode_ == Mode::kPartitioned);
  return *obs_[i];
}

PacketPool& ShardedGateway::shard_pool(uint32_t i) {
  PK_CHECK(mode_ == Mode::kPartitioned);
  return *pools_[i];
}

void ShardedGateway::RunUntilIdle() {
  PK_CHECK(mode_ == Mode::kPartitioned);
  for (;;) {
    PumpHandoffs();
    // Globally earliest pending event wins; shard id breaks ties, so the
    // merged schedule is total-ordered and the run is deterministic.
    TimePoint best = TimePoint::Max();
    uint32_t who = 0;
    for (uint32_t i = 0; i < shard_count(); ++i) {
      const TimePoint t = loops_[i]->NextEventTime();
      if (t < best) {
        best = t;
        who = i;
      }
    }
    if (best == TimePoint::Max()) {
      break;  // every loop idle; rings were just drained
    }
    loops_[who]->Step();
  }
  FlushEgress();
}

ShardedGateway::DrainResult ShardedGateway::DrainParallel(
    std::vector<std::vector<Packet>>* per_shard, size_t burst) {
  PK_CHECK(mode_ == Mode::kPartitioned);
  PK_CHECK(per_shard != nullptr && per_shard->size() == shards_.size());
  PK_CHECK(burst > 0);
  const uint32_t n = shard_count();
  DrainResult result;
  for (const auto& input : *per_shard) {
    result.packets_fed += input.size();
  }
  const uint64_t handoffs_before = AggregateStats().handoffs_in;
  std::atomic<uint32_t> active_producers{n};
  parallel_active_.store(true);
  std::vector<std::thread> workers;
  workers.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    workers.emplace_back([this, s, burst, per_shard, &active_producers] {
      std::vector<Packet>& input = (*per_shard)[s];
      PacketPool* pool = pools_[s].get();
      size_t pos = 0;
      bool producing = true;
      for (;;) {
        if (pos < input.size()) {
          const size_t count = std::min(burst, input.size() - pos);
          // Workload frames were built on the driver thread; adopt them here
          // so their eventual release recycles into this shard's pool.
          for (size_t i = 0; i < count; ++i) {
            input[pos + i].set_pool(pool);
          }
          shards_[s]->HandleInboundBatch(
              std::span<Packet>(&input[pos], count));
          pos += count;
        } else if (producing) {
          producing = false;
          active_producers.fetch_sub(1);
        }
        DrainIncoming(s);
        if (!producing && active_producers.load() == 0 &&
            in_flight_.load() == 0) {
          // No input left anywhere, nothing enqueued, nothing mid-delivery
          // (in_flight_ only reaches 0 after the consuming HandleHandoff
          // returned, so no thread can still mint new handoffs).
          break;
        }
        if (!producing) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  parallel_active_.store(false);
  // Workers binned their egress without contending; merge on the (now sole)
  // driver thread so the user sink still runs single-threaded.
  FlushEgress();
  result.handoffs = AggregateStats().handoffs_in - handoffs_before;
  return result;
}

GatewayStats ShardedGateway::AggregateStats() const {
  GatewayStats total;
  for (const auto& shard : shards_) {
    const GatewayStats& s = shard->stats();
    total.inbound_packets += s.inbound_packets;
    total.inbound_nonfarm += s.inbound_nonfarm;
    total.inbound_delivered += s.inbound_delivered;
    total.inbound_queued += s.inbound_queued;
    total.inbound_dropped_cloning += s.inbound_dropped_cloning;
    total.inbound_filtered_scanners += s.inbound_filtered_scanners;
    total.clones_triggered += s.clones_triggered;
    total.clone_failures += s.clone_failures;
    total.no_capacity_drops += s.no_capacity_drops;
    total.outbound_packets += s.outbound_packets;
    total.responses_allowed_out += s.responses_allowed_out;
    total.icmp_errors_allowed_out += s.icmp_errors_allowed_out;
    total.ttl_expired_drops += s.ttl_expired_drops;
    total.emergency_reclaims += s.emergency_reclaims;
    total.internal_forwards += s.internal_forwards;
    total.reflections_injected += s.reflections_injected;
    total.dns_responses += s.dns_responses;
    total.egress_packets += s.egress_packets;
    total.vms_retired += s.vms_retired;
    total.retired_idle += s.retired_idle;
    total.retired_lifetime += s.retired_lifetime;
    total.retired_infected_expired += s.retired_infected_expired;
    total.handoffs_out += s.handoffs_out;
    total.handoffs_in += s.handoffs_in;
  }
  return total;
}

size_t ShardedGateway::live_bindings() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->bindings().size();
  }
  return total;
}

void ShardedGateway::RegisterAggregateProbes(MetricRegistry& m) {
  aggregate_registry_ = &m;
  // Shards publish their probes under "gateway.s<i>."; these rollups restore
  // the unsharded names so watchdog rules, health snapshots, and dashboards
  // see one gateway regardless of shard count.
  m.RegisterProbe(this, "gateway.bindings.live", "vms", [this] {
    return static_cast<double>(live_bindings());
  });
  m.RegisterProbe(this, "gateway.bindings.load_factor", "ratio", [this] {
    // Worst shard: the probe is a probe-length health signal, and the hottest
    // table is the one that pages.
    double worst = 0.0;
    for (auto& g : shards_) {
      worst = std::max(worst, g->bindings().load_factor());
    }
    return worst;
  });
  m.RegisterProbe(this, "gateway.bindings.peak_live", "vms", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) {
      total += g->bindings().stats().peak_live;
    }
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.containment.allowed", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->containment().stats().allowed;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.containment.dropped", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->containment().stats().dropped;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.containment.reflected", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->containment().stats().reflected;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.containment.rate_limited", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->containment().stats().rate_limited;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.containment.dns_proxied", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->containment().stats().dns_proxied;
    return static_cast<double>(total);
  });
  m.RegisterProbe(
      this, "gateway.containment.escapes_from_infected", "count", [this] {
        uint64_t total = 0;
        for (auto& g : shards_) {
          total += g->containment().stats().escapes_from_infected;
        }
        return static_cast<double>(total);
      });
  m.RegisterProbe(this, "gateway.scan.tracked_sources", "sources", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->scan_detector().tracked_sources();
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.scan.scanners_flagged", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->scan_detector().scanners_flagged();
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.recycle.retired", "vms", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->stats().vms_retired;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.recycle.retired_idle", "vms", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->stats().retired_idle;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.recycle.retired_lifetime", "vms", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->stats().retired_lifetime;
    return static_cast<double>(total);
  });
  m.RegisterProbe(
      this, "gateway.recycle.retired_infected_expired", "vms", [this] {
        uint64_t total = 0;
        for (auto& g : shards_) total += g->stats().retired_infected_expired;
        return static_cast<double>(total);
      });
  m.RegisterProbe(this, "gateway.recycle.emergency_reclaims", "vms", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) total += g->stats().emergency_reclaims;
    return static_cast<double>(total);
  });
  m.RegisterProbe(this, "gateway.recycle.backlog", "vms", [this] {
    const TimePoint now = shared_loop_->Now();
    size_t backlog = 0;
    for (auto& g : shards_) {
      g->bindings().ForEach([&](Binding& binding) {
        if (ShouldRetire(binding, g->config().recycle, now)) {
          ++backlog;
        }
      });
    }
    return static_cast<double>(backlog);
  });
  m.RegisterProbe(this, "gateway.drops.total", "count", [this] {
    uint64_t total = 0;
    for (auto& g : shards_) {
      const GatewayStats& s = g->stats();
      total += s.no_capacity_drops + s.inbound_dropped_cloning +
               s.ttl_expired_drops + s.inbound_filtered_scanners +
               g->bindings().stats().pending_dropped;
    }
    return static_cast<double>(total);
  });
}

}  // namespace potemkin
