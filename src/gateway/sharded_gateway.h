// Sharded gateway: N per-shard datapaths behind one gateway-shaped facade.
//
// The single-core gateway tops out when one thread must parse, look up, and
// route every telescope packet. ShardedGateway breaks that ceiling by running
// `shard_count` independent Gateway instances, each owning the farm addresses
// whose low bits equal its shard id — binding table, flow table, containment
// state, scan detector and reflection NAT are all partitioned, so the hit path
// of one shard never takes a lock and never touches another shard's memory.
// Traffic that crosses the partition (reflection and farm-internal forwards
// whose rewritten destination hashes elsewhere) is enqueued on a bounded
// lock-free SPSC ring per ordered shard pair instead of routed inline.
//
// Two deployment modes:
//
//  * Shared-loop (Honeyfarm): every shard runs on the caller's EventLoop,
//    Observability, and backend — still strictly single-threaded and
//    deterministic. Handoff rings are pumped inline in shard order, so the
//    event schedule is a pure function of the input. With shard_count == 1
//    this is a byte-identical passthrough to a bare Gateway: same metric
//    names, same session ids, same stdout.
//
//  * Partitioned (benchmarks, parallel drains): each shard owns its own
//    EventLoop, Observability bundle, and PacketPool, and the caller supplies
//    one backend per shard. `RunUntilIdle` advances the shard loops in global
//    virtual-time order (barrier merge) for deterministic single-thread
//    execution; `DrainParallel` runs one real thread per shard for wall-clock
//    scaling measurements. Packets crossing shards are re-targeted at the
//    consumer's pool, so buffer recycling never races.
//
// Telemetry: counters keep their farm-wide names in both modes (same-name
// registration shares one atomic cell, so shards aggregate for free). Probes
// cannot share a name, so sharded-mode shards publish under "gateway.s<i>."
// and this facade re-registers farm-wide rollups under the original names —
// watchdog rules and health snapshots keep working unchanged.
#ifndef SRC_GATEWAY_SHARDED_GATEWAY_H_
#define SRC_GATEWAY_SHARDED_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/spsc_ring.h"
#include "src/gateway/gateway.h"
#include "src/net/packet_pool.h"
#include "src/obs/observability.h"

namespace potemkin {

struct ShardedGatewayConfig {
  // Per-shard template; shard_id/shard_count (and, in partitioned mode, obs)
  // are overwritten for each instance. When shard_count > 1 the scan
  // detector's distinct_threshold is scaled down by the shard count (floor 1):
  // each shard only sees the distinct destinations it owns, so a source
  // spraying the farm accumulates ~1/N of its distinct-dst count per shard —
  // without the rescale it would be flagged ~N× later than unsharded. The
  // trade-off: a source targeting a single shard's addresses flags up to N×
  // earlier (see DESIGN.md §10).
  GatewayConfig gateway;
  // Must be a power of two (address bits partition evenly).
  uint32_t shard_count = 1;
  // Capacity of each directed (producer, consumer) handoff ring, in packets.
  size_t handoff_ring_capacity = 4096;
  // Optional: pre-size each shard's binding index for an expected load so a
  // populate burst never rehashes mid-measurement.
  size_t reserve_bindings_per_shard = 0;
};

// The shard count examples and soaks default to: the largest power of two
// <= hardware_concurrency(), capped at 8 (shard scaling flattens past the
// core count; see BENCH_gateway_shard_scaling.json). Single-core hosts get 1,
// which keeps the deterministic stdout of every example byte-identical to the
// unsharded farm.
uint32_t DefaultGatewayShards();

class ShardedGateway {
 public:
  // Shared-loop mode: all shards share `loop`, `backend`, and the template's
  // Observability. Deterministic; what the Honeyfarm embeds.
  ShardedGateway(EventLoop* loop, const ShardedGatewayConfig& config,
                 GatewayBackend* backend);
  // Partitioned mode: one backend per shard; this object owns a private
  // EventLoop, Observability, and PacketPool per shard.
  ShardedGateway(const ShardedGatewayConfig& config,
                 std::vector<GatewayBackend*> backends);
  ~ShardedGateway();
  ShardedGateway(const ShardedGateway&) = delete;
  ShardedGateway& operator=(const ShardedGateway&) = delete;

  // ---- Datapath (gateway-shaped facade) ----
  // Inbound dispatch peeks the destination straight out of the frame bytes
  // (no full parse) to pick the owning shard.
  void HandleInbound(Packet packet);
  // Burst dispatch: bins the burst by owning shard (arrival order preserved
  // within a shard), then feeds each shard's bin through its batched path.
  void HandleInboundBatch(std::span<Packet> packets);
  // Outbound traffic shards by the transmitting VM's address (the source),
  // which is where its binding lives.
  void HandleOutbound(HostId host, VmId vm, Packet packet);
  void NotifyInfected(Ipv4Address vm_ip);
  void StartRecycling();
  size_t SweepOnce();
  // Retires up to `batch` most-idle VMs farm-wide, splitting the batch evenly
  // across shards (each shard ranks idleness within its own partition).
  // Returns the number retired.
  size_t ReclaimMostIdle(size_t batch);
  // Shared-loop mode: the sink is copied to every shard and invoked inline
  // (deterministic; the Honeyfarm's seed-handshake hook depends on this).
  // Partitioned mode: each shard gets a private sink appending to a per-shard
  // egress bin — shard threads never contend on the user callback — and
  // `sink` becomes the merge facade that FlushEgress feeds in shard order.
  void set_egress_sink(Gateway::EgressSink sink);
  // Partitioned mode: bypasses the merge facade for shard `i` — egress from
  // that shard goes straight to `sink` (invoked on the shard's thread during
  // DrainParallel; the caller owns its thread-safety).
  void set_shard_egress_sink(uint32_t i, Gateway::EgressSink sink);
  // Delivers every binned egress packet to the merged sink, in shard order
  // (deterministic). Called automatically at the end of RunUntilIdle and after
  // DrainParallel's threads join; callable directly by drivers that need the
  // egress earlier. Returns packets delivered.
  size_t FlushEgress();

  // ---- Host lifecycle (control plane; fan-out over every shard) ----
  size_t CountHostBindings(HostId host);
  size_t RetireHostBindings(HostId host);
  size_t InvalidateHostBindings(HostId host);
  size_t MigrateHostBindings(HostId host, size_t max);
  // Chaos invariant: reflect-NAT entries sitting on a shard that does not own
  // their victim address, summed farm-wide (must always be 0).
  size_t CountMisplacedReflectNat() const;

  // ---- Fault injection (chaos harness; single-threaded modes only) ----
  // Cuts (or heals) the directed handoff path from shard `from` to shard
  // `to`. While cut, queued handoffs stall in the ring and pushes that find
  // the ring full are dropped (counted in partition_drops); healing lets the
  // stalled queue flow on the next pump. Not supported under DrainParallel:
  // its quiescence protocol counts stalled handoffs as in-flight and would
  // spin forever.
  void SetHandoffPartition(uint32_t from, uint32_t to, bool cut);
  uint64_t partition_drops() const {
    return partition_drops_.load(std::memory_order_relaxed);
  }

  // ---- Topology ----
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }
  uint32_t ShardOf(Ipv4Address ip) const {
    return ip.value() & (shard_count() - 1);
  }
  Gateway& shard(uint32_t i) { return *shards_[i]; }
  const Gateway& shard(uint32_t i) const { return *shards_[i]; }
  // Partitioned-mode internals (checked: shared-loop mode has none).
  EventLoop& shard_loop(uint32_t i);
  Observability& shard_obs(uint32_t i);
  PacketPool& shard_pool(uint32_t i);

  // ---- Execution ----
  // Drains every handoff ring from the calling thread (single-threaded modes
  // only), delivering in (producer, consumer) shard order until all rings are
  // empty. Returns packets delivered. Re-entrant calls no-op: the outermost
  // pump finishes the job.
  size_t PumpHandoffs();
  // Partitioned barrier merge: repeatedly steps whichever shard loop holds the
  // globally earliest event (ties broken by shard id), pumping handoffs
  // between steps, until every loop is idle and every ring is empty. One
  // thread, deterministic — the reference schedule the parallel drain is
  // checked against.
  void RunUntilIdle();

  struct DrainResult {
    uint64_t packets_fed = 0;  // workload packets consumed
    uint64_t handoffs = 0;     // packets that crossed a shard boundary
  };
  // Parallel drain (partitioned mode): one thread per shard consumes
  // (*per_shard)[s] — frames whose destination that shard owns — in
  // `burst`-sized chunks through the batched path, draining its incoming
  // handoff rings between chunks. Workload packets are re-targeted at the
  // consuming shard's pool, so recycling stays thread-local. Blocks until all
  // input is consumed and every ring is empty.
  DrainResult DrainParallel(std::vector<std::vector<Packet>>* per_shard,
                            size_t burst);

  // ---- Telemetry ----
  // Field-wise sum of every shard's GatewayStats.
  GatewayStats AggregateStats() const;
  // Farm-wide live binding count (what FarmSample reports).
  size_t live_bindings() const;

 private:
  enum class Mode { kSharedLoop, kPartitioned };
  struct Handoff {
    Packet packet;
    // Routing context, including any reverse-NAT install the consuming
    // (victim-owning) shard must apply before routing.
    Gateway::HandoffContext ctx;
  };

  void BuildShards(const ShardedGatewayConfig& config, EventLoop* shared_loop,
                   GatewayBackend* shared_backend,
                   const std::vector<GatewayBackend*>& backends);
  void InstallHandoff(uint32_t from);
  // Farm-wide rollup probes under the unsharded names (shared-loop, N > 1).
  void RegisterAggregateProbes(MetricRegistry& m);
  SpscRing<Handoff>& RingTo(uint32_t from, uint32_t to) {
    return *rings_[from * shards_.size() + to];
  }
  // Pops everything queued for shard `to`, adopting each packet into the
  // shard's pool (partitioned mode) before delivery. Caller must be the only
  // consumer for `to` (its worker thread, or any single-threaded driver).
  size_t DrainIncoming(uint32_t to);

  Mode mode_;
  // Shared-loop mode only: the caller's loop (aggregate probes read its clock).
  EventLoop* shared_loop_ = nullptr;
  std::vector<std::unique_ptr<Gateway>> shards_;
  // Directed-pair rings, row-major [from][to]; the diagonal is never used
  // (ownership is checked before a handoff is produced).
  std::vector<std::unique_ptr<SpscRing<Handoff>>> rings_;
  // Partitioned-mode per-shard environments (empty in shared-loop mode).
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::unique_ptr<Observability>> obs_;
  std::vector<std::unique_ptr<PacketPool>> pools_;
  // Shared-loop mode: the registry aggregate probes were registered with.
  MetricRegistry* aggregate_registry_ = nullptr;
  // Per-consumer-shard handoff fabric distributions (N > 1 only): ring depth
  // observed when a drain finds work, and packets popped per drain pass. In
  // shared-loop mode every shard's handle aliases the same farm-wide cells
  // (same-name registration); in partitioned mode each shard's registry gets
  // its own.
  std::vector<LatencyHistogram> m_ring_occupancy_;
  std::vector<LatencyHistogram> m_ring_batch_;
  // Handoffs produced but not yet consumed; the parallel drain's termination
  // signal (a push increments before publication, a pop decrements after the
  // packet is fully processed, so 0 means globally quiescent).
  std::atomic<uint64_t> in_flight_{0};
  // True while DrainParallel workers run: switches the full-ring fallback from
  // inline delivery (single-thread) to drain-own-rings-and-retry.
  std::atomic<bool> parallel_active_{false};
  // Re-entrancy guard for PumpHandoffs (single-threaded modes only).
  bool pumping_ = false;
  // Retained scratch for HandleInboundBatch partitioning.
  std::vector<std::vector<Packet>> batch_bins_;
  // Directed-pair partition flags, row-major [from][to] like rings_; true =
  // the chaos harness cut this path. Atomic so a DrainParallel worker reading
  // a stale heal is a race only in timing, never in memory.
  std::unique_ptr<std::atomic<bool>[]> partition_;
  std::atomic<uint64_t> partition_drops_{0};
  bool PartitionCut(uint32_t from, uint32_t to) const {
    return partition_[from * shards_.size() + to].load(
        std::memory_order_relaxed);
  }
  // Partitioned-mode egress: shard s's sink appends here (bin s touched only
  // by shard s's thread); FlushEgress drains into merged_egress_ in shard
  // order.
  std::vector<std::vector<Packet>> egress_bins_;
  Gateway::EgressSink merged_egress_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_SHARDED_GATEWAY_H_
