// The Potemkin gateway.
//
// All honeyfarm traffic crosses this component. Inbound: route packets for the
// emulated prefix to the VM bound to the destination address, flash-cloning one on
// first contact (late binding) and queueing packets while the clone completes.
// Outbound: let honeypots *respond* to the external peers that contacted them,
// proxy DNS internally, and subject everything a VM initiates to the containment
// policy — forwarding, dropping, rate-limiting or reflecting it back into the farm
// with full NAT bookkeeping so reflected conversations stay coherent.
#ifndef SRC_GATEWAY_GATEWAY_H_
#define SRC_GATEWAY_GATEWAY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/flat_index.h"
#include "src/base/rng.h"
#include "src/base/slab.h"
#include "src/gateway/binding_table.h"
#include "src/gateway/containment.h"
#include "src/gateway/dns_proxy.h"
#include "src/gateway/recycler.h"
#include "src/gateway/scan_detector.h"
#include "src/net/flow.h"
#include "src/obs/observability.h"

namespace potemkin {

// How the gateway spreads new bindings across physical hosts.
enum class PlacementKind {
  kRoundRobin,
  kLeastLoaded,
  kFirstFit,
  // Picks the admitting host with the highest HostPlacementScore (ties go to
  // the lowest host id). Backends that don't override the score hook make
  // this equivalent to kFirstFit, so the mode is safe to default into.
  kScored,
};

// The clone-server cluster as the gateway sees it (implemented by src/core).
class GatewayBackend {
 public:
  virtual ~GatewayBackend() = default;
  virtual size_t NumHosts() const = 0;
  virtual bool HostCanAdmit(HostId host) const = 0;
  virtual size_t HostLiveVms(HostId host) const = 0;
  // Flash-clones a VM bound to `ip` on `host`; calls `done` with the VM id, or
  // kInvalidVm on failure. Completion happens in virtual time. `session` is
  // the forensic session minted for the first-contact packet that triggered
  // the clone; backends thread it to the clone engine so the clone's ledger
  // events join the attack's timeline.
  virtual void SpawnVm(HostId host, Ipv4Address ip, SessionId session,
                       std::function<void(VmId)> done) = 0;
  virtual void RetireVm(HostId host, VmId vm) = 0;
  // Placement desirability of `host` under PlacementKind::kScored; higher is
  // better. The control plane overrides this with a capacity-aware score
  // (frame headroom, live clones, recent allocation denials); the default
  // makes every host equal so kScored degrades to first-fit.
  virtual double HostPlacementScore(HostId host) const {
    (void)host;
    return 0.0;
  }
  // MUST deliver asynchronously (via the event loop): the gateway assumes no
  // re-entrant HandleOutbound call happens inside DeliverToVm. `view` is a live
  // parse of `packet` (parse-once: the gateway already decoded the frame);
  // implementations that defer delivery must copy the view alongside the packet
  // — it stays valid across Packet moves but not past the packet's lifetime.
  virtual void DeliverToVm(HostId host, VmId vm, Packet packet,
                           const PacketView& view) = 0;
};

struct GatewayConfig {
  Ipv4Prefix farm_prefix = Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16);
  ContainmentConfig containment;
  RecyclePolicy recycle;
  ScanDetectorConfig scan_detector;
  PlacementKind placement = PlacementKind::kRoundRobin;
  // Queue packets while the destination VM is cloning (vs dropping them).
  bool queue_while_cloning = true;
  // Inbound load-shedding ablation: once a source is flagged as a scanner, its
  // first-contact packets no longer spawn VMs (packets to already-live VMs still
  // flow). Trades coverage of aggressive scanners for clone-engine headroom.
  bool filter_known_scanners = false;
  // Shard topology. A sharded deployment runs `shard_count` Gateway instances,
  // each owning the farm addresses whose low bits equal `shard_id`
  // (shard_count must be a power of two). The defaults make a standalone
  // gateway a 1-shard deployment with every shard branch compiled out of the
  // hit path behind a single predictable comparison. When shard_count > 1 the
  // gateway hands packets it does not own to the handoff sink (see
  // set_shard_handoff) instead of routing them, and mints session ids on a
  // per-shard stride so ids stay farm-unique without cross-shard coordination:
  // session s belongs to shard (s - 1) % shard_count.
  uint32_t shard_id = 0;
  uint32_t shard_count = 1;
  size_t pending_queue_cap = 64;
  Duration flow_idle_timeout = Duration::Minutes(2);
  uint64_t seed = 42;
  // Telemetry bundle; null falls back to Observability::Default(). The farm
  // passes its own so per-farm metrics stay isolated.
  Observability* obs = nullptr;
};

struct GatewayStats {
  uint64_t inbound_packets = 0;
  uint64_t inbound_nonfarm = 0;
  uint64_t inbound_delivered = 0;
  uint64_t inbound_queued = 0;
  uint64_t inbound_dropped_cloning = 0;
  uint64_t inbound_filtered_scanners = 0;
  uint64_t clones_triggered = 0;
  uint64_t clone_failures = 0;
  uint64_t no_capacity_drops = 0;
  uint64_t outbound_packets = 0;
  uint64_t responses_allowed_out = 0;
  uint64_t icmp_errors_allowed_out = 0;
  uint64_t ttl_expired_drops = 0;
  uint64_t emergency_reclaims = 0;
  uint64_t internal_forwards = 0;
  uint64_t reflections_injected = 0;
  uint64_t dns_responses = 0;
  uint64_t egress_packets = 0;
  uint64_t vms_retired = 0;
  // Recycler churn attributed by RetireReason (emergency reclaims counted
  // separately above).
  uint64_t retired_idle = 0;
  uint64_t retired_lifetime = 0;
  uint64_t retired_infected_expired = 0;
  // Cross-shard traffic (zero in a 1-shard deployment).
  uint64_t handoffs_out = 0;  // packets passed to the handoff sink
  uint64_t handoffs_in = 0;   // packets received via HandleHandoff
};

class Gateway {
 public:
  // Sink for packets the gateway releases to the real Internet.
  using EgressSink = std::function<void(Packet)>;
  // Routing context carried alongside a packet across a shard handoff. A
  // nonzero `nat_key` is a reverse-NAT install request: the receiving shard
  // owns the reflection victim, so *it* must hold the (victim, scanner) ->
  // external mapping — the victim's replies shard by source and would never
  // find an entry left on the producing shard.
  struct HandoffContext {
    bool via_reflection = false;
    uint64_t nat_key = 0;      // victim << 32 | scanner; 0 = no install
    Ipv4Address nat_external;  // address the victim's replies impersonate
  };
  // Sink for packets whose farm destination belongs to another shard. The
  // sharded gateway wires this to the SPSC handoff ring toward `dst_shard`.
  using ShardHandoff = std::function<void(Packet packet, uint32_t dst_shard,
                                          const HandoffContext& ctx)>;

  Gateway(EventLoop* loop, const GatewayConfig& config, GatewayBackend* backend);
  ~Gateway();

  // ---- External (Internet) side ----
  void HandleInbound(Packet packet);
  // Burst entry point: parses every frame once, bins the burst by destination
  // address, then routes each bin with a single binding lookup. Within one
  // destination, packet order is preserved; bins are visited in ascending
  // address order (deterministic). Packets are consumed (moved from).
  void HandleInboundBatch(std::span<Packet> packets);
  void set_egress_sink(EgressSink sink) { egress_ = std::move(sink); }

  // ---- Shard fabric ----
  void set_shard_handoff(ShardHandoff handoff) { handoff_ = std::move(handoff); }
  // Entry point for packets another shard handed off to this one: the frame
  // was already classified there (containment, NAT rewrite, flow accounting),
  // so this parses and routes into this shard's partition only — installing
  // the reverse-NAT entry first when the context requests one.
  void HandleHandoff(Packet packet, const HandoffContext& ctx);
  // Owning shard of a farm destination under this gateway's topology.
  uint32_t ShardOf(Ipv4Address ip) const {
    return ip.value() & (config_.shard_count - 1);
  }

  // ---- Farm side ----
  // Called by the clone servers for every packet a VM transmits.
  void HandleOutbound(HostId host, VmId vm, Packet packet);

  // Infection notifications (from the guest layer, via the honeyfarm) so the
  // recycler can apply the infected-hold policy and stats can attribute escapes.
  void NotifyInfected(Ipv4Address vm_ip);

  // Begins periodic recycling sweeps; runs until the loop stops.
  void StartRecycling();
  // One sweep, immediately. Returns how many VMs were retired.
  size_t SweepOnce();
  // Retires up to `batch` of the most-idle active VMs immediately (the
  // emergency-reclaim path, callable by the farm's memory-pressure sweep).
  // Returns the number retired.
  size_t ReclaimMostIdle(size_t batch);

  // ---- Host lifecycle (control plane) ----
  // Bindings currently placed on `host` (any state).
  size_t CountHostBindings(HostId host);
  // Drain step: retires every *active* binding on `host` (backend RetireVm +
  // binding removal, ledger kVmRetired with 0xfe marking a drain). Bindings
  // still cloning are left alone — removing them would orphan the VM the
  // in-flight OnCloneDone is about to hand back; the drain loop simply runs
  // again after they activate. Returns the number retired.
  size_t RetireHostBindings(HostId host);
  // Failover step: removes ALL bindings on `host` WITHOUT calling back into
  // the backend — the host crashed and its VMs are already gone. Affected
  // farm addresses re-route (fresh clone elsewhere) on their next packet
  // instead of blackholing into a dead binding. Stale reflect-NAT entries are
  // GC'd by the next sweep. Returns the number invalidated.
  size_t InvalidateHostBindings(HostId host);
  // Live-migration step: rebinds up to `max` active, non-infected bindings
  // off `host` by flash-cloning a replacement on a host ChooseHost still
  // admits (the control plane's admission filter excludes draining/down
  // hosts) and retiring the old VM once the replacement is live. Infected
  // bindings are retired instead of moved (an infected VM's state must not
  // outlive its host's drain). Per-VM TCP state does not survive — the
  // rebind preserves the address->farm mapping and session id, and the guest
  // restarts its conversation, which the paper's short-lived attack sessions
  // tolerate. Returns how many migrations were *started*.
  size_t MigrateHostBindings(HostId host, size_t max);
  // Chaos-harness invariant probe: reflect-NAT entries whose victim address
  // this shard does not own (must be 0 at all times in a sharded deployment).
  size_t CountMisplacedReflectNat() const;

  BindingTable& bindings() { return bindings_; }
  const GatewayStats& stats() const { return stats_; }
  const ContainmentEngine& containment() const { return containment_; }
  const DnsProxy& dns_proxy() const { return dns_proxy_; }
  const ScanDetector& scan_detector() const { return scan_detector_; }
  const FlowTable& flows() const { return flows_; }
  const GatewayConfig& config() const { return config_; }

 private:
  // Routes a packet destined to a farm address to its (possibly new) VM.
  // `via_reflection` marks bindings created by reflected traffic. `view` is the
  // ingress parse of `packet`; it is threaded (and kept in sync by the rewrite
  // helpers) all the way to the backend instead of re-parsing per layer.
  // A nonzero `nat_key` is a reflection reverse-NAT install that must land
  // wherever the destination (the victim) is routed: locally when this shard
  // owns it, carried in the HandoffContext otherwise.
  void RouteToFarm(Packet packet, PacketView& view, bool via_reflection,
                   uint64_t nat_key = 0, Ipv4Address nat_external = {});
  // Find-or-create the reverse-NAT entry for `nat_key`, pointing it at
  // `external`.
  void InstallReflectNat(uint64_t nat_key, Ipv4Address external);
  // Picks a host for a new binding; returns false if no host can admit.
  bool ChooseHost(HostId* out);
  void OnCloneDone(Ipv4Address ip, VmId vm);
  void OnMigrateDone(Ipv4Address ip, HostId from, HostId to, VmId old_vm,
                     VmId vm);
  // `wait_ns` is the virtual time the packet spent between ingress and this
  // delivery: 0 on the direct hit path, the first-contact clone wait for
  // packets flushed from a binding's pending queue.
  void DeliverToBinding(Binding& binding, Packet packet, PacketView& view,
                        int64_t wait_ns = 0);
  void HandleDnsQuery(const PacketView& view, Binding* source_binding);
  void ScheduleSweep();
  // Retires the most-idle active VMs to relieve memory pressure.
  void EmergencyReclaim();

  EventLoop* loop_;
  GatewayConfig config_;
  GatewayBackend* backend_;
  Observability& obs_;
  // Hot-path metric handles: each Inc/Record is one relaxed atomic add against
  // registry-owned storage — no allocation, no lock, no map lookup per packet.
  Counter m_rx_packets_;
  Counter m_rx_hit_;
  Counter m_rx_first_contact_;
  Counter m_rx_nonfarm_;
  Counter m_rx_queued_;
  Counter m_tx_outbound_;
  Counter m_tx_egress_;
  // Registered only when shard_count > 1; default handles hit the registry's
  // shared sink so a 1-shard gateway pays nothing for the sharding seams.
  Counter m_handoff_out_;
  Counter m_handoff_in_;
  FixedHistogram m_batch_bin_packets_;
  FixedHistogram m_rx_frame_bytes_;
  // Ingress→delivery latency in virtual ns (see DeliverToBinding); shards
  // share the farm-wide name, so the percentiles aggregate like the counters.
  LatencyHistogram m_datapath_latency_ns_;
  BindingTable bindings_;
  ContainmentEngine containment_;
  DnsProxy dns_proxy_;
  ScanDetector scan_detector_;
  FlowTable flows_;
  EgressSink egress_;
  ShardHandoff handoff_;
  GatewayStats stats_;
  HostId next_host_ = 0;
  // Next forensic session id; minted per first contact. Shard s starts at
  // 1 + s and strides by shard_count, so ids stay farm-unique with no
  // cross-shard coordination and kNoSession (0) stays reserved for
  // farm-internal traffic. A 1-shard gateway mints 1, 2, 3, ... exactly as
  // before sharding existed.
  SessionId next_session_ = 1;
  bool recycling_started_ = false;
  // Reflection NAT: internal victim address -> external address it impersonates,
  // keyed per (victim, scanner) pair packed as victim << 32 | scanner. Flat
  // index + slab, same shape as the binding and flow tables: the lookup sits on
  // the outbound path of every reflected conversation.
  struct ReflectNatEntry {
    uint64_t key = 0;       // victim << 32 | scanner
    Ipv4Address external;   // address the victim's replies impersonate
  };
  FlatIndex<uint64_t> reflect_index_;
  Slab<ReflectNatEntry> reflect_slab_;
  // Scratch for HandleInboundBatch, retained so steady-state bursts allocate
  // nothing once the vectors reach burst size.
  std::vector<PacketView> batch_views_;
  std::vector<uint32_t> batch_order_;
  // Addresses with a replacement clone in flight (MigrateHostBindings): keeps
  // a drain tick that outpaces clone latency from double-spawning replacements
  // for the same binding.
  std::unordered_set<uint32_t> migrating_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_GATEWAY_H_
