// VM recycling policy.
//
// Scalability hinges on aggressively reclaiming idle VMs so the live population
// tracks only the *currently active* slice of the address space. The policy below
// captures the paper's knobs: an idle timeout, a hard lifetime cap, and an extended
// hold for infected VMs (which are the interesting ones to keep observing).
#ifndef SRC_GATEWAY_RECYCLER_H_
#define SRC_GATEWAY_RECYCLER_H_

#include "src/base/time_types.h"
#include "src/gateway/binding_table.h"

namespace potemkin {

struct RecyclePolicy {
  // Retire a VM that has seen no traffic for this long.
  Duration idle_timeout = Duration::Seconds(30);
  // Retire any VM after this long regardless of activity (0 = disabled).
  Duration max_lifetime = Duration::Minutes(30);
  // Infected VMs use this idle timeout instead (usually longer, for analysis;
  // 0 = same as idle_timeout).
  Duration infected_hold = Duration::Minutes(5);
  // How often the gateway sweeps the binding table.
  Duration scan_interval = Duration::Seconds(1);
  // Memory-pressure relief: when a new address finds no host with capacity,
  // immediately retire this many of the most-idle active VMs (0 = disabled).
  // Reclaim is asynchronous (teardown goes through the control plane), so the
  // triggering packet is still dropped; subsequent arrivals find room.
  uint32_t emergency_reclaim_batch = 0;
};

// Why (or whether) a binding should be retired. The gateway attributes recycler
// churn per reason in its health metrics, so the policy exposes the
// classification rather than just the boolean.
enum class RetireReason : uint8_t {
  kKeep = 0,          // not retired
  kLifetime,          // exceeded max_lifetime
  kIdle,              // idle past idle_timeout
  kInfectedExpired,   // infected VM idle past its (longer) infected_hold
};

RetireReason ClassifyRetire(const Binding& binding, const RecyclePolicy& policy,
                            TimePoint now);

// Whether `binding` should be retired at time `now` under `policy`. Bindings still
// cloning are never retired.
inline bool ShouldRetire(const Binding& binding, const RecyclePolicy& policy,
                         TimePoint now) {
  return ClassifyRetire(binding, policy, now) != RetireReason::kKeep;
}

}  // namespace potemkin

#endif  // SRC_GATEWAY_RECYCLER_H_
