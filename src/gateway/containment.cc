#include "src/gateway/containment.h"

#include "src/net/dns.h"

namespace potemkin {

const char* OutboundModeName(OutboundMode mode) {
  switch (mode) {
    case OutboundMode::kOpen:
      return "open";
    case OutboundMode::kDropAll:
      return "drop-all";
    case OutboundMode::kReflect:
      return "reflect";
  }
  return "?";
}

const char* OutboundActionName(OutboundAction action) {
  switch (action) {
    case OutboundAction::kAllow:
      return "allow";
    case OutboundAction::kDrop:
      return "drop";
    case OutboundAction::kReflect:
      return "reflect";
    case OutboundAction::kRateLimit:
      return "rate-limit";
    case OutboundAction::kDnsProxy:
      return "dns-proxy";
    case OutboundAction::kInternal:
      return "internal";
  }
  return "?";
}

ContainmentEngine::ContainmentEngine(const ContainmentConfig& config,
                                     Ipv4Prefix farm_prefix, uint64_t seed)
    : config_(config), farm_prefix_(farm_prefix), seed_(seed) {}

OutboundAction ContainmentEngine::Classify(const PacketView& view, VmId source_vm,
                                           bool infected, TimePoint now) {
  // Farm-internal destinations never leave; no containment decision applies.
  if (farm_prefix_.Contains(view.ip().dst)) {
    ++stats_.internal;
    return OutboundAction::kInternal;
  }

  // DNS queries are served by the proxy (before rate limiting: cheap and the
  // answers keep malware on its normal code path).
  if (config_.dns_proxy && view.is_udp() && view.udp().dst_port == kDnsPort) {
    ++stats_.dns_proxied;
    return OutboundAction::kDnsProxy;
  }

  // Allow-listed ports pass regardless of mode.
  if (!config_.allowed_ports.empty() &&
      config_.allowed_ports.count(view.dst_port()) > 0) {
    ++stats_.allow_list_hits;
    ++stats_.allowed;
    if (infected) {
      ++stats_.escapes_from_infected;
    }
    return OutboundAction::kAllow;
  }

  // Per-VM rate limiting applies to anything that would otherwise leave or be
  // reflected.
  if (config_.rate_limit_pps > 0.0) {
    auto [it, inserted] = rate_limiters_.try_emplace(
        source_vm, config_.rate_limit_pps, config_.rate_limit_burst);
    if (!it->second.TryConsume(now)) {
      ++stats_.rate_limited;
      return OutboundAction::kRateLimit;
    }
  }

  switch (config_.mode) {
    case OutboundMode::kOpen:
      ++stats_.allowed;
      if (infected) {
        ++stats_.escapes_from_infected;
      }
      return OutboundAction::kAllow;
    case OutboundMode::kDropAll:
      ++stats_.dropped;
      return OutboundAction::kDrop;
    case OutboundMode::kReflect:
      ++stats_.reflected;
      return OutboundAction::kReflect;
  }
  ++stats_.dropped;
  return OutboundAction::kDrop;
}

Ipv4Address ContainmentEngine::ReflectTarget(Ipv4Address external_dst,
                                             Ipv4Address source_ip, uint64_t salt) {
  const uint64_t space = farm_prefix_.NumAddresses();
  uint64_t key;
  if (config_.keyed_reflection) {
    key = static_cast<uint64_t>(external_dst.value()) * 0x9e3779b97f4a7c15ull + seed_ +
          salt;
  } else {
    key = (seed_ + 0x2545f4914f6cdd1dull * ++random_counter_) ^
          (static_cast<uint64_t>(external_dst.value()) << 1);
  }
  key ^= key >> 29;
  key *= 0xbf58476d1ce4e5b9ull;
  key ^= key >> 32;
  uint64_t index = key % space;
  Ipv4Address target = farm_prefix_.AddressAt(index);
  if (target == source_ip) {
    index = (index + 1) % space;
    target = farm_prefix_.AddressAt(index);
  }
  return target;
}

}  // namespace potemkin
