#include "src/gateway/gateway.h"

#include <algorithm>
#include <limits>

#include "src/base/log.h"

namespace potemkin {

Gateway::Gateway(EventLoop* loop, const GatewayConfig& config, GatewayBackend* backend)
    : loop_(loop),
      config_(config),
      backend_(backend),
      obs_(ObsOrDefault(config.obs)),
      bindings_(config.pending_queue_cap),
      containment_(config.containment, config.farm_prefix, config.seed),
      dns_proxy_(config.farm_prefix, config.seed),
      scan_detector_(config.scan_detector),
      flows_(config.flow_idle_timeout) {
  next_session_ = 1 + config.shard_id;
  MetricRegistry& m = obs_.metrics;
  // Counters keep their farm-wide names even when sharded: same-name
  // registration shares one atomic cell, so N shards recording into
  // "gateway.rx.packets" aggregate for free. Probes cannot share (duplicate
  // names shadow), so a sharded gateway publishes its probes under
  // "gateway.s<i>." and ShardedGateway re-registers farm-wide sums under the
  // original names. A 1-shard gateway keeps the exact historical names, so
  // nothing downstream (watchdog rules, metric dumps, goldens) changes.
  const std::string ns =
      config.shard_count > 1
          ? "gateway.s" + std::to_string(config.shard_id) + "."
          : "gateway.";
  if (config.shard_count > 1) {
    m_handoff_out_ = m.RegisterCounter("gateway.handoff.out", "count");
    m_handoff_in_ = m.RegisterCounter("gateway.handoff.in", "count");
  }
  m_rx_packets_ = m.RegisterCounter("gateway.rx.packets", "count");
  m_rx_hit_ = m.RegisterCounter("gateway.rx.hit", "count");
  m_rx_first_contact_ = m.RegisterCounter("gateway.rx.first_contact", "count");
  m_rx_nonfarm_ = m.RegisterCounter("gateway.rx.nonfarm", "count");
  m_rx_queued_ = m.RegisterCounter("gateway.rx.queued", "count");
  m_tx_outbound_ = m.RegisterCounter("gateway.tx.outbound", "count");
  m_tx_egress_ = m.RegisterCounter("gateway.tx.egress", "count");
  m_batch_bin_packets_ = m.RegisterHistogram(
      "gateway.batch.bin_packets", "packets", ExponentialBuckets(1.0, 2.0, 10));
  m_rx_frame_bytes_ = m.RegisterHistogram(
      "gateway.rx.frame_bytes", "bytes", LinearBuckets(64.0, 256.0, 8));
  // Per-packet ingress→delivery latency in *virtual* ns: 0 for the
  // steady-state hit path (delivered in the arrival tick), the first-contact
  // clone wait for packets that queued while their VM spawned. Virtual time
  // keeps the exported percentiles byte-deterministic run to run.
  m_datapath_latency_ns_ = m.RegisterLatency("gateway.datapath.latency_ns", "ns");
  // Cold-path state (binding table, containment verdicts, scan detector,
  // recycler churn) is exported via probes: sampled only when a snapshot is
  // taken, costing the packet path nothing.
  m.RegisterProbe(this, ns + "bindings.live", "vms",
                  [this] { return static_cast<double>(bindings_.size()); });
  m.RegisterProbe(this, ns + "bindings.load_factor", "ratio",
                  [this] { return bindings_.load_factor(); });
  m.RegisterProbe(this, ns + "bindings.peak_live", "vms", [this] {
    return static_cast<double>(bindings_.stats().peak_live);
  });
  m.RegisterProbe(this, ns + "containment.allowed", "count", [this] {
    return static_cast<double>(containment_.stats().allowed);
  });
  m.RegisterProbe(this, ns + "containment.dropped", "count", [this] {
    return static_cast<double>(containment_.stats().dropped);
  });
  m.RegisterProbe(this, ns + "containment.reflected", "count", [this] {
    return static_cast<double>(containment_.stats().reflected);
  });
  m.RegisterProbe(this, ns + "containment.rate_limited", "count", [this] {
    return static_cast<double>(containment_.stats().rate_limited);
  });
  m.RegisterProbe(this, ns + "containment.dns_proxied", "count", [this] {
    return static_cast<double>(containment_.stats().dns_proxied);
  });
  m.RegisterProbe(this, ns + "containment.escapes_from_infected", "count",
                  [this] {
                    return static_cast<double>(
                        containment_.stats().escapes_from_infected);
                  });
  m.RegisterProbe(this, ns + "scan.tracked_sources", "sources", [this] {
    return static_cast<double>(scan_detector_.tracked_sources());
  });
  m.RegisterProbe(this, ns + "scan.scanners_flagged", "count", [this] {
    return static_cast<double>(scan_detector_.scanners_flagged());
  });
  m.RegisterProbe(this, ns + "recycle.retired", "vms", [this] {
    return static_cast<double>(stats_.vms_retired);
  });
  m.RegisterProbe(this, ns + "recycle.retired_idle", "vms", [this] {
    return static_cast<double>(stats_.retired_idle);
  });
  m.RegisterProbe(this, ns + "recycle.retired_lifetime", "vms", [this] {
    return static_cast<double>(stats_.retired_lifetime);
  });
  m.RegisterProbe(this, ns + "recycle.retired_infected_expired", "vms",
                  [this] {
                    return static_cast<double>(stats_.retired_infected_expired);
                  });
  m.RegisterProbe(this, ns + "recycle.emergency_reclaims", "vms", [this] {
    return static_cast<double>(stats_.emergency_reclaims);
  });
  // Watchdog feed: bindings past their retire deadline but not yet swept (a
  // growing backlog means the recycler is starved or wedged)...
  m.RegisterProbe(this, ns + "recycle.backlog", "vms", [this] {
    const TimePoint now = loop_->Now();
    size_t backlog = 0;
    bindings_.ForEach([&](Binding& binding) {
      if (ShouldRetire(binding, config_.recycle, now)) {
        ++backlog;
      }
    });
    return static_cast<double>(backlog);
  });
  // ...and every class of shed inbound packet, folded into one counter so a
  // single rate rule can page on drop storms.
  m.RegisterProbe(this, ns + "drops.total", "count", [this] {
    return static_cast<double>(
        stats_.no_capacity_drops + stats_.inbound_dropped_cloning +
        stats_.ttl_expired_drops + stats_.inbound_filtered_scanners +
        bindings_.stats().pending_dropped);
  });
}

Gateway::~Gateway() { obs_.metrics.RemoveProbes(this); }

bool Gateway::ChooseHost(HostId* out) {
  const size_t n = backend_->NumHosts();
  if (n == 0) {
    return false;
  }
  switch (config_.placement) {
    case PlacementKind::kRoundRobin: {
      for (size_t tried = 0; tried < n; ++tried) {
        const HostId host = next_host_;
        next_host_ = (next_host_ + 1) % static_cast<HostId>(n);
        if (backend_->HostCanAdmit(host)) {
          *out = host;
          return true;
        }
      }
      return false;
    }
    case PlacementKind::kLeastLoaded: {
      size_t best_load = std::numeric_limits<size_t>::max();
      HostId best = 0;
      bool found = false;
      for (HostId host = 0; host < n; ++host) {
        if (backend_->HostCanAdmit(host) && backend_->HostLiveVms(host) < best_load) {
          best_load = backend_->HostLiveVms(host);
          best = host;
          found = true;
        }
      }
      if (found) {
        *out = best;
      }
      return found;
    }
    case PlacementKind::kFirstFit: {
      for (HostId host = 0; host < n; ++host) {
        if (backend_->HostCanAdmit(host)) {
          *out = host;
          return true;
        }
      }
      return false;
    }
    case PlacementKind::kScored: {
      double best_score = 0.0;
      HostId best = 0;
      bool found = false;
      for (HostId host = 0; host < n; ++host) {
        if (!backend_->HostCanAdmit(host)) {
          continue;
        }
        const double score = backend_->HostPlacementScore(host);
        if (!found || score > best_score) {
          best_score = score;
          best = host;
          found = true;
        }
      }
      if (found) {
        *out = best;
      }
      return found;
    }
  }
  return false;
}

void Gateway::DeliverToBinding(Binding& binding, Packet packet, PacketView& view,
                               int64_t wait_ns) {
  // The gateway is a router hop: TTL decrements on the way into the farm (the
  // incremental update keeps `view` in sync, so the backend needs no re-parse).
  if (!DecrementTtl(packet, &view)) {
    ++stats_.ttl_expired_drops;
    obs_.ledger.Append(LedgerEvent::kPacketDropped, binding.session,
                       loop_->Now().nanos(), view.ip().src.value(),
                       static_cast<uint64_t>(LedgerDropReason::kTtlExpired));
    return;
  }
  binding.last_activity = loop_->Now();
  ++binding.inbound_packets;
  ++stats_.inbound_delivered;
  m_rx_hit_.Inc();
  m_datapath_latency_ns_.Record(
      static_cast<uint64_t>(wait_ns > 0 ? wait_ns : 0));
  // Stamp the session on the view so the guest layers can attribute their
  // ledger events without a binding lookup of their own.
  view.set_session(binding.session);
  obs_.ledger.Append(LedgerEvent::kPacketDelivered, binding.session,
                     loop_->Now().nanos(), view.ip().src.value(),
                     packet.size());
  backend_->DeliverToVm(binding.host, binding.vm, std::move(packet), view);
}

void Gateway::RouteToFarm(Packet packet, PacketView& view, bool via_reflection,
                          uint64_t nat_key, Ipv4Address nat_external) {
  const Ipv4Address dst = view.ip().dst;
  // Shard ownership gate. Inbound traffic is pre-binned by the dispatcher, so
  // on the hit path this is one always-false predictable comparison; the
  // branch fires only for reflected / farm-internal traffic whose rewritten
  // destination hashes to a different shard, which crosses via the handoff
  // ring instead of touching this shard's tables.
  if (config_.shard_count > 1) {
    const uint32_t owner = ShardOf(dst);
    if (owner != config_.shard_id && handoff_) {
      ++stats_.handoffs_out;
      m_handoff_out_.Inc();
      handoff_(std::move(packet), owner,
               HandoffContext{via_reflection, nat_key, nat_external});
      return;
    }
  }
  // The destination routes here, so this shard owns the reflection victim:
  // install the reverse-NAT entry on the same shard the victim's replies
  // (which shard by source) will consult.
  if (nat_key != 0) {
    InstallReflectNat(nat_key, nat_external);
  }
  Binding* binding = bindings_.Find(dst);
  if (binding != nullptr) {
    if (binding->state == BindingState::kActive) {
      DeliverToBinding(*binding, std::move(packet), view);
      return;
    }
    // Still cloning.
    if (config_.queue_while_cloning) {
      if (bindings_.QueuePending(*binding, std::move(packet))) {
        ++stats_.inbound_queued;
        m_rx_queued_.Inc();
        obs_.ledger.Append(LedgerEvent::kPacketQueued, binding->session,
                           loop_->Now().nanos(), view.ip().src.value(),
                           binding->pending_count);
      } else {
        obs_.ledger.Append(
            LedgerEvent::kPacketDropped, binding->session, loop_->Now().nanos(),
            view.ip().src.value(),
            static_cast<uint64_t>(LedgerDropReason::kQueueFull));
      }
    } else {
      ++stats_.inbound_dropped_cloning;
      obs_.ledger.Append(
          LedgerEvent::kPacketDropped, binding->session, loop_->Now().nanos(),
          view.ip().src.value(),
          static_cast<uint64_t>(LedgerDropReason::kNotQueueing));
    }
    binding->last_activity = loop_->Now();
    return;
  }

  // First contact: late-bind a VM to this address.
  HostId host = 0;
  if (!ChooseHost(&host)) {
    ++stats_.no_capacity_drops;
    obs_.ledger.Append(LedgerEvent::kPacketDropped, kNoSession,
                       loop_->Now().nanos(), view.ip().src.value(),
                       static_cast<uint64_t>(LedgerDropReason::kNoCapacity));
    if (config_.recycle.emergency_reclaim_batch > 0) {
      EmergencyReclaim();
    }
    return;
  }
  Binding& fresh = bindings_.CreatePending(dst, host, loop_->Now());
  fresh.reflected_origin = via_reflection;
  // Mint the attack session here: the id every later layer (clone engine,
  // guest, containment, retirement) stamps on its ledger events. The stride
  // keeps ids farm-unique across shards (see next_session_ in the header).
  fresh.session = next_session_;
  next_session_ += config_.shard_count;
  m_rx_first_contact_.Inc();
  obs_.ledger.Append(LedgerEvent::kFirstContact, fresh.session,
                     loop_->Now().nanos(), view.ip().src.value(),
                     dst.value());
  if (config_.queue_while_cloning) {
    if (bindings_.QueuePending(fresh, std::move(packet))) {
      ++stats_.inbound_queued;
      m_rx_queued_.Inc();
      obs_.ledger.Append(LedgerEvent::kPacketQueued, fresh.session,
                         loop_->Now().nanos(), view.ip().src.value(),
                         fresh.pending_count);
    } else {
      obs_.ledger.Append(
          LedgerEvent::kPacketDropped, fresh.session, loop_->Now().nanos(),
          view.ip().src.value(),
          static_cast<uint64_t>(LedgerDropReason::kQueueFull));
    }
  } else {
    ++stats_.inbound_dropped_cloning;
    obs_.ledger.Append(
        LedgerEvent::kPacketDropped, fresh.session, loop_->Now().nanos(),
        view.ip().src.value(),
        static_cast<uint64_t>(LedgerDropReason::kNotQueueing));
  }
  ++stats_.clones_triggered;
  obs_.ledger.Append(LedgerEvent::kCloneRequested, fresh.session,
                     loop_->Now().nanos(), dst.value(), host);
  backend_->SpawnVm(host, dst, fresh.session,
                    [this, dst](VmId vm) { OnCloneDone(dst, vm); });
}

void Gateway::OnCloneDone(Ipv4Address ip, VmId vm) {
  Binding* binding = bindings_.Find(ip);
  if (binding == nullptr) {
    // Recycled while cloning; drop the VM again if it exists.
    if (vm != kInvalidVm) {
      // We do not know the host anymore; nothing to do — CreatePending/Remove
      // ordering guarantees this only happens after an explicit Remove, which
      // already retired the VM.
    }
    return;
  }
  if (vm == kInvalidVm) {
    ++stats_.clone_failures;
    obs_.ledger.Append(LedgerEvent::kCloneFailed, binding->session,
                       loop_->Now().nanos(), ip.value(), binding->host);
    bindings_.Remove(ip);
    return;
  }
  bindings_.Activate(ip, vm, loop_->Now());
  // End-to-end flash-clone latency (first contact -> VM live), from the
  // attack's point of view; the engine-side clone.latency_ms histogram covers
  // the control-plane cost alone.
  obs_.ledger.Append(LedgerEvent::kCloneDone, binding->session,
                     loop_->Now().nanos(), vm,
                     (loop_->Now() - binding->created).nanos());
  auto pending = bindings_.TakePending(*binding);
  // Every flushed packet waited (at most) the full first-contact clone
  // latency; charging the binding's age to each is the honest upper bound
  // without per-packet ingress timestamps in the pending queue.
  const int64_t wait_ns = (loop_->Now() - binding->created).nanos();
  for (auto& queued : pending) {
    // Pending packets were parsed at ingress but queued without their views
    // (the queue outlives the ingress stack frame); re-parse on this cold path.
    auto view = PacketView::Parse(queued);
    if (view) {
      DeliverToBinding(*binding, std::move(queued), *view, wait_ns);
    }
  }
}

void Gateway::HandleInbound(Packet packet) {
  auto view = PacketView::Parse(packet);
  if (!view) {
    return;
  }
  ++stats_.inbound_packets;
  m_rx_packets_.Inc();
  m_rx_frame_bytes_.Record(static_cast<double>(packet.size()));
  if (!config_.farm_prefix.Contains(view->ip().dst)) {
    ++stats_.inbound_nonfarm;
    m_rx_nonfarm_.Inc();
    return;
  }
  const bool is_scanner =
      scan_detector_.Record(view->ip().src, view->ip().dst, loop_->Now());
  if (scan_detector_.newly_flagged()) {
    // Rare (once per source): attribute the flag to the targeted binding's
    // session when one exists so it shows up in that attack's timeline.
    const Binding* target = bindings_.Find(view->ip().dst);
    obs_.ledger.Append(LedgerEvent::kScannerFlagged,
                       target != nullptr ? target->session : kNoSession,
                       loop_->Now().nanos(), view->ip().src.value(),
                       config_.scan_detector.distinct_threshold);
  }
  if (config_.filter_known_scanners && is_scanner &&
      bindings_.Find(view->ip().dst) == nullptr) {
    ++stats_.inbound_filtered_scanners;
    obs_.ledger.Append(
        LedgerEvent::kPacketDropped, kNoSession, loop_->Now().nanos(),
        view->ip().src.value(),
        static_cast<uint64_t>(LedgerDropReason::kScannerFiltered));
    return;
  }
  flows_.Record(*view, loop_->Now());
  RouteToFarm(std::move(packet), *view, /*via_reflection=*/false);
}

void Gateway::HandleInboundBatch(std::span<Packet> packets) {
  // Pass 1: decode every frame once, keeping only routable farm traffic.
  batch_views_.assign(packets.size(), PacketView{});
  batch_order_.clear();
  for (uint32_t i = 0; i < packets.size(); ++i) {
    auto view = PacketView::Parse(packets[i]);
    if (!view) {
      continue;
    }
    ++stats_.inbound_packets;
    m_rx_packets_.Inc();
    m_rx_frame_bytes_.Record(static_cast<double>(packets[i].size()));
    if (!config_.farm_prefix.Contains(view->ip().dst)) {
      ++stats_.inbound_nonfarm;
      m_rx_nonfarm_.Inc();
      continue;
    }
    batch_views_[i] = *view;
    batch_order_.push_back(i);
  }
  // Pass 2: bin by destination (stable, so per-destination packet order is the
  // arrival order) and route each bin with one binding lookup.
  std::stable_sort(batch_order_.begin(), batch_order_.end(),
                   [this](uint32_t a, uint32_t b) {
                     return batch_views_[a].ip().dst.value() <
                            batch_views_[b].ip().dst.value();
                   });
  size_t i = 0;
  while (i < batch_order_.size()) {
    const Ipv4Address dst = batch_views_[batch_order_[i]].ip().dst;
    size_t j = i;
    while (j < batch_order_.size() &&
           batch_views_[batch_order_[j]].ip().dst == dst) {
      ++j;
    }
    m_batch_bin_packets_.Record(static_cast<double>(j - i));
    Binding* binding = bindings_.Find(dst);
    for (size_t k = i; k < j; ++k) {
      const uint32_t idx = batch_order_[k];
      PacketView& view = batch_views_[idx];
      const bool is_scanner =
          scan_detector_.Record(view.ip().src, dst, loop_->Now());
      if (scan_detector_.newly_flagged()) {
        obs_.ledger.Append(LedgerEvent::kScannerFlagged,
                           binding != nullptr ? binding->session : kNoSession,
                           loop_->Now().nanos(), view.ip().src.value(),
                           config_.scan_detector.distinct_threshold);
      }
      if (config_.filter_known_scanners && is_scanner && binding == nullptr) {
        ++stats_.inbound_filtered_scanners;
        obs_.ledger.Append(
            LedgerEvent::kPacketDropped, kNoSession, loop_->Now().nanos(),
            view.ip().src.value(),
            static_cast<uint64_t>(LedgerDropReason::kScannerFiltered));
        continue;
      }
      flows_.Record(view, loop_->Now());
      if (binding != nullptr && binding->state == BindingState::kActive) {
        DeliverToBinding(*binding, std::move(packets[idx]), view);
        continue;
      }
      RouteToFarm(std::move(packets[idx]), view, /*via_reflection=*/false);
      // RouteToFarm may have created, activated (synchronous spawn), removed
      // (clone failure), or reclaimed the binding; refresh for the rest of the
      // bin rather than trusting a possibly-dead pointer.
      binding = bindings_.Find(dst);
    }
    i = j;
  }
}

void Gateway::HandleHandoff(Packet packet, const HandoffContext& ctx) {
  // The packet was classified (containment verdict, NAT rewrite, flow
  // accounting) on the shard that produced it; this side only re-parses — the
  // origin's PacketView died with its stack frame — and routes into its own
  // partition. No flow re-record: the flow table entry, if any, lives where
  // the traffic originated. A reverse-NAT install request rides along and is
  // applied by RouteToFarm now that the victim-owning shard is executing.
  auto view = PacketView::Parse(packet);
  if (!view) {
    return;
  }
  ++stats_.handoffs_in;
  m_handoff_in_.Inc();
  RouteToFarm(std::move(packet), *view, ctx.via_reflection, ctx.nat_key,
              ctx.nat_external);
}

void Gateway::InstallReflectNat(uint64_t nat_key, Ipv4Address external) {
  uint32_t slot = reflect_index_.Find(nat_key);
  if (slot == FlatIndex<uint64_t>::kNotFound) {
    slot = reflect_slab_.Alloc();
    reflect_slab_.At(slot).key = nat_key;
    reflect_index_.Insert(nat_key, slot);
  }
  reflect_slab_.At(slot).external = external;
}

void Gateway::HandleDnsQuery(const PacketView& view, Binding* source_binding) {
  const auto payload = view.l4_payload();
  const auto query = ParseDnsQuery(payload.data(), payload.size());
  if (!query || source_binding == nullptr ||
      source_binding->state != BindingState::kActive) {
    // DNS-shaped but not a parseable query (raw exfil on port 53), or the
    // sender has no live binding: the proxy swallows it. Record the verdict —
    // a silently vanished packet would break escape-attempt attribution.
    obs_.ledger.Append(LedgerEvent::kContainmentDrop,
                       source_binding != nullptr ? source_binding->session
                                                 : view.session(),
                       loop_->Now().nanos(), view.ip().dst.value(),
                       view.dst_port());
    return;
  }
  const DnsResponse answer = dns_proxy_.Resolve(*query);
  obs_.ledger.Append(LedgerEvent::kContainmentDnsProxy, source_binding->session,
                     loop_->Now().nanos(), view.ip().dst.value(),
                     view.dst_port());
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(0xd75);  // the gateway's own MAC
  spec.dst_mac = view.eth().src;
  spec.src_ip = view.ip().dst;  // impersonate the queried resolver
  spec.dst_ip = view.ip().src;
  spec.proto = IpProto::kUdp;
  spec.src_port = kDnsPort;
  spec.dst_port = view.udp().src_port;
  spec.payload = EncodeDnsResponse(answer);
  ++stats_.dns_responses;
  Packet response = BuildPacket(spec);
  auto response_view = PacketView::Parse(response);
  if (response_view) {
    response_view->set_session(source_binding->session);
    backend_->DeliverToVm(source_binding->host, source_binding->vm,
                          std::move(response), *response_view);
  }
}

void Gateway::HandleOutbound(HostId host, VmId vm, Packet packet) {
  (void)host;
  auto view = PacketView::Parse(packet);
  if (!view) {
    return;
  }
  ++stats_.outbound_packets;
  m_tx_outbound_.Inc();
  Binding* source_binding = bindings_.Find(view->ip().src);
  // Captured by value: RouteToFarm below can resize the binding slab.
  const SessionId session =
      source_binding != nullptr ? source_binding->session : kNoSession;

  // Farm-internal destination: forward inside, applying reflection reverse-NAT so
  // reflected conversations look like they involve the original external address.
  if (config_.farm_prefix.Contains(view->ip().dst)) {
    ++stats_.internal_forwards;
    const uint64_t nat_key =
        (static_cast<uint64_t>(view->ip().src.value()) << 32) |
        view->ip().dst.value();
    const uint32_t nat_slot = reflect_index_.Find(nat_key);
    if (nat_slot != FlatIndex<uint64_t>::kNotFound) {
      // The incremental rewrite keeps `view` current — no re-parse.
      RewriteIpv4Src(packet, reflect_slab_.At(nat_slot).external, &*view);
      // Deliberately NOT recorded in the flow table: a NAT-rewritten packet
      // impersonates an external source, and recording it would later make a
      // VM-initiated packet toward that external address look like a
      // "response", opening a containment escape. The flow table only ever
      // holds genuinely external traffic.
      RouteToFarm(std::move(packet), *view, /*via_reflection=*/true);
      return;
    }
    flows_.Record(*view, loop_->Now());
    RouteToFarm(std::move(packet), *view, /*via_reflection=*/false);
    return;
  }

  // ICMP errors about inbound traffic (port unreachable backscatter, TTL
  // exceeded) may return to the offending external sender: the quoted packet
  // must have come from that sender into the farm.
  if (IsIcmpError(*view)) {
    const auto embedded = IcmpEmbeddedAddresses(*view);
    if (embedded && embedded->first == view->ip().dst &&
        config_.farm_prefix.Contains(embedded->second)) {
      ++stats_.icmp_errors_allowed_out;
      ++stats_.egress_packets;
      m_tx_egress_.Inc();
      obs_.ledger.Append(LedgerEvent::kEgressResponse, session,
                         loop_->Now().nanos(), view->ip().dst.value(),
                         packet.size());
      if (egress_) {
        egress_(std::move(packet));
      }
      return;
    }
    return;  // malformed or not about inbound traffic: contain it
  }

  // Response traffic: if the external peer initiated this flow, honeypots may
  // answer it — that is the farm's whole purpose.
  const FlowKey key = FlowKey::FromView(*view);
  const FlowRecord* flow = flows_.Find(key);
  if (flow != nullptr && flow->key.src == view->ip().dst) {
    flows_.Record(*view, loop_->Now());
    ++stats_.responses_allowed_out;
    ++stats_.egress_packets;
    m_tx_egress_.Inc();
    obs_.ledger.Append(LedgerEvent::kEgressResponse, session,
                       loop_->Now().nanos(), view->ip().dst.value(),
                       packet.size());
    if (egress_) {
      egress_(std::move(packet));
    }
    return;
  }

  // VM-initiated traffic: containment policy decides.
  const bool infected = source_binding != nullptr && source_binding->infected;
  const OutboundAction action =
      containment_.Classify(*view, vm, infected, loop_->Now());
  switch (action) {
    case OutboundAction::kAllow:
      flows_.Record(*view, loop_->Now());
      ++stats_.egress_packets;
      m_tx_egress_.Inc();
      // An *infected* VM's packet leaving for the real Internet is the
      // containment failure the paper is about — a breach event, which the
      // armed flight recorder trips on.
      obs_.ledger.Append(infected ? LedgerEvent::kContainmentBreach
                                  : LedgerEvent::kContainmentAllow,
                         session, loop_->Now().nanos(),
                         view->ip().dst.value(), view->dst_port());
      if (egress_) {
        egress_(std::move(packet));
      }
      return;
    case OutboundAction::kDrop:
      obs_.ledger.Append(LedgerEvent::kContainmentDrop, session,
                         loop_->Now().nanos(), view->ip().dst.value(),
                         view->dst_port());
      return;
    case OutboundAction::kRateLimit:
      obs_.ledger.Append(LedgerEvent::kContainmentRateLimit, session,
                         loop_->Now().nanos(), view->ip().dst.value(),
                         view->dst_port());
      return;
    case OutboundAction::kDnsProxy:
      HandleDnsQuery(*view, source_binding);
      return;
    case OutboundAction::kReflect: {
      const Ipv4Address external = view->ip().dst;
      const Ipv4Address victim =
          containment_.ReflectTarget(external, view->ip().src);
      RewriteIpv4Dst(packet, victim, &*view);
      // Remember that `victim`'s replies to this scanner must impersonate
      // `external`. The entry must live on the shard that owns `victim` (the
      // reply's source), so RouteToFarm installs it locally or threads it
      // through the handoff — never into this (scanner-owning) shard's table
      // when the victim hashes elsewhere.
      const uint64_t nat_key = (static_cast<uint64_t>(victim.value()) << 32) |
                               view->ip().src.value();
      ++stats_.reflections_injected;
      obs_.ledger.Append(LedgerEvent::kContainmentReflect, session,
                         loop_->Now().nanos(), external.value(),
                         victim.value());
      // Not recorded in the flow table either (see the NAT branch above).
      RouteToFarm(std::move(packet), *view, /*via_reflection=*/true, nat_key,
                  external);
      return;
    }
    case OutboundAction::kInternal:
      return;  // unreachable: handled above
  }
}

void Gateway::NotifyInfected(Ipv4Address vm_ip) {
  Binding* binding = bindings_.Find(vm_ip);
  if (binding != nullptr) {
    binding->infected = true;
  }
}

size_t Gateway::SweepOnce() {
  const TimePoint now = loop_->Now();
  const auto victims = bindings_.CollectIf([&](const Binding& binding) {
    return ShouldRetire(binding, config_.recycle, now);
  });
  for (const auto& ip : victims) {
    Binding* binding = bindings_.Find(ip);
    if (binding == nullptr) {
      continue;
    }
    const RetireReason reason = ClassifyRetire(*binding, config_.recycle, now);
    switch (reason) {
      case RetireReason::kIdle:
        ++stats_.retired_idle;
        break;
      case RetireReason::kLifetime:
        ++stats_.retired_lifetime;
        break;
      case RetireReason::kInfectedExpired:
        ++stats_.retired_infected_expired;
        break;
      case RetireReason::kKeep:
        break;  // state changed between collect and retire; retire anyway
    }
    obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session, now.nanos(),
                       binding->vm, static_cast<uint64_t>(reason));
    backend_->RetireVm(binding->host, binding->vm);
    bindings_.Remove(ip);
    ++stats_.vms_retired;
  }
  flows_.ExpireIdle(now);
  scan_detector_.ExpireIdle(now);
  // GC reflection-NAT entries whose victim binding is gone; a future reflection to
  // the same external address deterministically recreates them (keyed mode).
  std::vector<uint32_t> dead_nat;
  reflect_slab_.ForEach([&](uint32_t slot, const ReflectNatEntry& entry) {
    const auto victim = Ipv4Address(static_cast<uint32_t>(entry.key >> 32));
    if (bindings_.Find(victim) == nullptr) {
      dead_nat.push_back(slot);
    }
  });
  for (const uint32_t slot : dead_nat) {
    reflect_index_.Erase(reflect_slab_.At(slot).key);
    reflect_slab_.Free(slot);
  }
  return victims.size();
}

void Gateway::EmergencyReclaim() {
  ReclaimMostIdle(config_.recycle.emergency_reclaim_batch);
}

size_t Gateway::ReclaimMostIdle(size_t batch) {
  // Collect active bindings ordered by idleness (oldest activity first).
  std::vector<const Binding*> candidates;
  bindings_.ForEach([&](Binding& binding) {
    if (binding.state == BindingState::kActive) {
      candidates.push_back(&binding);
    }
  });
  std::sort(candidates.begin(), candidates.end(),
            [](const Binding* a, const Binding* b) {
              return a->last_activity < b->last_activity;
            });
  batch = std::min(batch, candidates.size());
  std::vector<Ipv4Address> victims;
  victims.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    victims.push_back(candidates[i]->ip);
  }
  for (const auto& ip : victims) {
    Binding* binding = bindings_.Find(ip);
    if (binding == nullptr) {
      continue;
    }
    // 0xff in `b` marks an emergency reclaim (vs a RetireReason value).
    obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session,
                       loop_->Now().nanos(), binding->vm, 0xff);
    backend_->RetireVm(binding->host, binding->vm);
    bindings_.Remove(ip);
    ++stats_.vms_retired;
    ++stats_.emergency_reclaims;
  }
  return victims.size();
}

size_t Gateway::CountHostBindings(HostId host) {
  size_t count = 0;
  bindings_.ForEach([&](Binding& binding) {
    if (binding.host == host) {
      ++count;
    }
  });
  return count;
}

size_t Gateway::RetireHostBindings(HostId host) {
  const auto victims = bindings_.CollectIf([&](const Binding& binding) {
    return binding.host == host && binding.state == BindingState::kActive;
  });
  for (const auto& ip : victims) {
    Binding* binding = bindings_.Find(ip);
    if (binding == nullptr) {
      continue;
    }
    // 0xfe in `b` marks a drain retirement (vs RetireReason / 0xff reclaim).
    obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session,
                       loop_->Now().nanos(), binding->vm, 0xfe);
    backend_->RetireVm(binding->host, binding->vm);
    bindings_.Remove(ip);
    migrating_.erase(ip.value());
    ++stats_.vms_retired;
  }
  return victims.size();
}

size_t Gateway::InvalidateHostBindings(HostId host) {
  const auto victims = bindings_.CollectIf(
      [&](const Binding& binding) { return binding.host == host; });
  for (const auto& ip : victims) {
    Binding* binding = bindings_.Find(ip);
    if (binding == nullptr) {
      continue;
    }
    // No backend RetireVm: the host crashed, its VMs are gone. 0xfd marks the
    // failover invalidation in the forensic timeline.
    obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session,
                       loop_->Now().nanos(), binding->vm, 0xfd);
    bindings_.Remove(ip);
    migrating_.erase(ip.value());
    ++stats_.vms_retired;
  }
  return victims.size();
}

size_t Gateway::MigrateHostBindings(HostId from, size_t max) {
  size_t started = 0;
  const auto candidates = bindings_.CollectIf([&](const Binding& binding) {
    return binding.host == from && binding.state == BindingState::kActive &&
           migrating_.count(binding.ip.value()) == 0;
  });
  for (const auto& ip : candidates) {
    if (started >= max) {
      break;
    }
    Binding* binding = bindings_.Find(ip);
    if (binding == nullptr) {
      continue;
    }
    if (binding->infected) {
      // Infected state must not outlive the host's drain: retire, don't move.
      obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session,
                         loop_->Now().nanos(), binding->vm, 0xfe);
      backend_->RetireVm(binding->host, binding->vm);
      bindings_.Remove(ip);
      ++stats_.vms_retired;
      ++started;
      continue;
    }
    HostId to = 0;
    if (!ChooseHost(&to) || to == from) {
      break;  // nowhere to go this tick; the drain deadline backstops
    }
    const VmId old_vm = binding->vm;
    const SessionId session = binding->session;
    obs_.ledger.Append(LedgerEvent::kCtrlMigrate, session,
                       loop_->Now().nanos(), ip.value(),
                       (static_cast<uint64_t>(from) << 32) | to);
    migrating_.insert(ip.value());
    ++started;
    backend_->SpawnVm(to, ip, session,
                      [this, ip, from, to, old_vm](VmId vm) {
                        OnMigrateDone(ip, from, to, old_vm, vm);
                      });
  }
  return started;
}

void Gateway::OnMigrateDone(Ipv4Address ip, HostId from, HostId to,
                            VmId old_vm, VmId vm) {
  migrating_.erase(ip.value());
  Binding* binding = bindings_.Find(ip);
  if (binding == nullptr) {
    // Recycled mid-migration; the replacement is an orphan — retire it.
    if (vm != kInvalidVm) {
      backend_->RetireVm(to, vm);
    }
    return;
  }
  if (vm == kInvalidVm) {
    // Replacement clone failed (target saturated or crashed mid-flight); the
    // binding stays on `from` and the next drain tick tries again.
    return;
  }
  if (binding->state != BindingState::kActive || binding->host != from ||
      binding->vm != old_vm) {
    // The binding moved or was rebound while the replacement cloned; the
    // fresh VM has no traffic to serve.
    backend_->RetireVm(to, vm);
    return;
  }
  obs_.ledger.Append(LedgerEvent::kVmRetired, binding->session,
                     loop_->Now().nanos(), old_vm, 0xfe);
  backend_->RetireVm(from, old_vm);
  binding->host = to;
  binding->vm = vm;
  binding->last_activity = loop_->Now();
  ++stats_.vms_retired;
}

size_t Gateway::CountMisplacedReflectNat() const {
  if (config_.shard_count <= 1) {
    return 0;
  }
  size_t misplaced = 0;
  reflect_slab_.ForEach([&](uint32_t, const ReflectNatEntry& entry) {
    const auto victim = Ipv4Address(static_cast<uint32_t>(entry.key >> 32));
    if (ShardOf(victim) != config_.shard_id) {
      ++misplaced;
    }
  });
  return misplaced;
}

void Gateway::ScheduleSweep() {
  // Periodic timer: one retained closure for the lifetime of the gateway
  // instead of a fresh allocation per sweep.
  loop_->SchedulePeriodic(config_.recycle.scan_interval, [this]() { SweepOnce(); });
}

void Gateway::StartRecycling() {
  if (recycling_started_) {
    return;
  }
  recycling_started_ = true;
  ScheduleSweep();
}

}  // namespace potemkin
