#include "src/gateway/low_interaction.h"

namespace potemkin {

LowInteractionResponder::LowInteractionResponder(Ipv4Prefix prefix,
                                                 std::vector<ServiceConfig> services,
                                                 uint64_t seed)
    : prefix_(prefix), services_(std::move(services)), seed_(seed) {}

const ServiceConfig* LowInteractionResponder::FindService(IpProto proto,
                                                          uint16_t port) const {
  for (const auto& service : services_) {
    if (service.proto == proto && service.port == port) {
      return &service;
    }
  }
  return nullptr;
}

uint32_t LowInteractionResponder::FlowIsn(const PacketView& view) const {
  // Keyed 4-tuple hash in the shape of RFC 6528: stable for a flow (so the
  // facade's sequence numbers cohere across the packets of one conversation,
  // like a stateful stack's would) but unpredictable across flows and seeds.
  uint64_t h = seed_ ^ ((static_cast<uint64_t>(view.ip().src.value()) << 32) |
                        view.ip().dst.value());
  h *= 0x9e3779b97f4a7c15ull;
  h ^= (static_cast<uint64_t>(view.tcp().src_port) << 16) | view.tcp().dst_port;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return static_cast<uint32_t>(h);
}

std::optional<Packet> LowInteractionResponder::Respond(const PacketView& view) {
  if (!prefix_.Contains(view.ip().dst)) {
    return std::nullopt;
  }
  ++stats_.packets_seen;

  PacketSpec reply;
  reply.src_mac = MacAddress::FromId(0x10f);  // the responder's single MAC
  reply.dst_mac = view.eth().src;
  reply.src_ip = view.ip().dst;  // impersonate whichever address was probed
  reply.dst_ip = view.ip().src;

  if (view.is_icmp()) {
    if (view.icmp().type != 8) {
      return std::nullopt;
    }
    ++stats_.icmp_replies;
    reply.proto = IpProto::kIcmp;
    reply.icmp_type = 0;
    reply.icmp_id = view.icmp().id;
    reply.icmp_seq = view.icmp().seq;
    reply.payload.assign(view.l4_payload().begin(), view.l4_payload().end());
    return BuildPacket(reply);
  }

  if (view.is_tcp()) {
    const uint8_t flags = view.tcp().flags;
    if (flags & TcpFlags::kRst) {
      return std::nullopt;  // RSTs are never answered
    }
    const ServiceConfig* service = FindService(IpProto::kTcp, view.tcp().dst_port);
    const uint32_t seg = static_cast<uint32_t>(view.l4_payload().size());
    // RFC 793 SEG.LEN: payload octets plus one each for SYN and FIN. The two
    // components are additive — a FIN carrying data consumes len+1 sequence
    // octets, and acking anything less diverges from the guest stack.
    const uint32_t seg_len = seg + ((flags & TcpFlags::kSyn) ? 1u : 0u) +
                             ((flags & TcpFlags::kFin) ? 1u : 0u);
    reply.proto = IpProto::kTcp;
    reply.src_port = view.tcp().dst_port;
    reply.dst_port = view.tcp().src_port;

    if (service == nullptr) {
      // Closed port: every non-RST segment draws an RFC-form reset, exactly as
      // GuestTcpStack answers — with-ACK segments are reset at SEG.ACK with no
      // ACK flag; no-ACK segments get seq=0 and an ack covering the segment.
      ++stats_.rsts_sent;
      if (flags & TcpFlags::kAck) {
        reply.tcp_flags = TcpFlags::kRst;
        reply.seq = view.tcp().ack;
        reply.ack = 0;
      } else {
        reply.tcp_flags = TcpFlags::kRst | TcpFlags::kAck;
        reply.seq = 0;
        reply.ack = view.tcp().seq + seg_len;
      }
      return BuildPacket(reply);
    }

    const uint32_t isn = FlowIsn(view);
    if ((flags & TcpFlags::kSyn) && !(flags & TcpFlags::kAck)) {
      // The SYN|ACK acknowledges exactly the SYN octet; data riding a SYN is
      // not accepted before establishment (matching GuestTcpStack).
      ++stats_.synacks_sent;
      reply.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
      reply.seq = isn;
      reply.ack = view.tcp().seq + 1;
      return BuildPacket(reply);
    }
    if (flags & TcpFlags::kFin) {
      ++stats_.finacks_sent;
      reply.tcp_flags = TcpFlags::kFin | TcpFlags::kAck;
      reply.seq = isn + 1;  // our SYN consumed one sequence number
      reply.ack = view.tcp().seq + seg_len;  // payload bytes plus the FIN octet
      return BuildPacket(reply);
    }
    if (seg > 0) {
      // Exploit payloads hit a facade: there is nothing to compromise. This
      // counter IS the fidelity gap versus the real farm.
      if (service->vulnerability &&
          service->vulnerability->Matches(IpProto::kTcp, view.tcp().dst_port,
                                          view.l4_payload())) {
        ++stats_.exploit_payloads_ignored;
      }
      if (!service->banner.empty()) {
        ++stats_.banners_sent;
        reply.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
        reply.seq = isn + 1;
        reply.ack = view.tcp().seq + seg_len;
        reply.payload = service->banner;
        return BuildPacket(reply);
      }
    }
    return std::nullopt;
  }

  if (view.is_udp()) {
    const ServiceConfig* service = FindService(IpProto::kUdp, view.udp().dst_port);
    if (service == nullptr) {
      return std::nullopt;
    }
    if (service->vulnerability &&
        service->vulnerability->Matches(IpProto::kUdp, view.udp().dst_port,
                                        view.l4_payload())) {
      ++stats_.exploit_payloads_ignored;
    }
    if (service->banner.empty()) {
      return std::nullopt;
    }
    ++stats_.banners_sent;
    reply.proto = IpProto::kUdp;
    reply.src_port = view.udp().dst_port;
    reply.dst_port = view.udp().src_port;
    reply.payload = service->banner;
    return BuildPacket(reply);
  }
  return std::nullopt;
}

}  // namespace potemkin
