#include "src/gateway/low_interaction.h"

namespace potemkin {

LowInteractionResponder::LowInteractionResponder(Ipv4Prefix prefix,
                                                 std::vector<ServiceConfig> services,
                                                 uint64_t seed)
    : prefix_(prefix), services_(std::move(services)), rng_(seed) {}

const ServiceConfig* LowInteractionResponder::FindService(IpProto proto,
                                                          uint16_t port) const {
  for (const auto& service : services_) {
    if (service.proto == proto && service.port == port) {
      return &service;
    }
  }
  return nullptr;
}

std::optional<Packet> LowInteractionResponder::Respond(const PacketView& view) {
  if (!prefix_.Contains(view.ip().dst)) {
    return std::nullopt;
  }
  ++stats_.packets_seen;

  PacketSpec reply;
  reply.src_mac = MacAddress::FromId(0x10f);  // the responder's single MAC
  reply.dst_mac = view.eth().src;
  reply.src_ip = view.ip().dst;  // impersonate whichever address was probed
  reply.dst_ip = view.ip().src;

  if (view.is_icmp()) {
    if (view.icmp().type != 8) {
      return std::nullopt;
    }
    ++stats_.icmp_replies;
    reply.proto = IpProto::kIcmp;
    reply.icmp_type = 0;
    reply.icmp_id = view.icmp().id;
    reply.icmp_seq = view.icmp().seq;
    reply.payload.assign(view.l4_payload().begin(), view.l4_payload().end());
    return BuildPacket(reply);
  }

  if (view.is_tcp()) {
    const ServiceConfig* service = FindService(IpProto::kTcp, view.tcp().dst_port);
    reply.proto = IpProto::kTcp;
    reply.src_port = view.tcp().dst_port;
    reply.dst_port = view.tcp().src_port;
    reply.seq = static_cast<uint32_t>(rng_.NextU64());
    const uint32_t seg = static_cast<uint32_t>(view.l4_payload().size());
    const bool syn_or_fin =
        (view.tcp().flags & (TcpFlags::kSyn | TcpFlags::kFin)) != 0;
    reply.ack = view.tcp().seq + (seg > 0 ? seg : (syn_or_fin ? 1 : 0));
    if ((view.tcp().flags & TcpFlags::kSyn) && !(view.tcp().flags & TcpFlags::kAck)) {
      if (service != nullptr) {
        ++stats_.synacks_sent;
        reply.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
      } else {
        ++stats_.rsts_sent;
        reply.tcp_flags = TcpFlags::kRst | TcpFlags::kAck;
      }
      return BuildPacket(reply);
    }
    if (!view.l4_payload().empty() && service != nullptr) {
      // Exploit payloads hit a facade: there is nothing to compromise. This
      // counter IS the fidelity gap versus the real farm.
      if (service->vulnerability &&
          service->vulnerability->Matches(IpProto::kTcp, view.tcp().dst_port,
                                          view.l4_payload())) {
        ++stats_.exploit_payloads_ignored;
      }
      if (!service->banner.empty()) {
        ++stats_.banners_sent;
        reply.tcp_flags = TcpFlags::kPsh | TcpFlags::kAck;
        reply.payload = service->banner;
        return BuildPacket(reply);
      }
    }
    return std::nullopt;
  }

  if (view.is_udp()) {
    const ServiceConfig* service = FindService(IpProto::kUdp, view.udp().dst_port);
    if (service == nullptr) {
      return std::nullopt;
    }
    if (service->vulnerability &&
        service->vulnerability->Matches(IpProto::kUdp, view.udp().dst_port,
                                        view.l4_payload())) {
      ++stats_.exploit_payloads_ignored;
    }
    if (service->banner.empty()) {
      return std::nullopt;
    }
    ++stats_.banners_sent;
    reply.proto = IpProto::kUdp;
    reply.src_port = view.udp().dst_port;
    reply.dst_port = view.udp().src_port;
    reply.payload = service->banner;
    return BuildPacket(reply);
  }
  return std::nullopt;
}

}  // namespace potemkin
