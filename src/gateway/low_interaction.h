// Low-interaction responder baseline (honeyd-style).
//
// The paper motivates Potemkin by contrast with low-interaction honeypots:
// stateless responders that fake protocol front-ends for thousands of addresses
// at negligible cost, but cannot actually *be compromised*, so they miss the
// behaviour that matters (infection, propagation, payloads). This class is that
// baseline: it answers handshakes and serves canned banners for an entire prefix
// without any VM, which the fidelity-comparison experiment (E2) measures against
// the real farm.
#ifndef SRC_GATEWAY_LOW_INTERACTION_H_
#define SRC_GATEWAY_LOW_INTERACTION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/guest/service.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

struct LowInteractionStats {
  uint64_t packets_seen = 0;
  uint64_t synacks_sent = 0;
  uint64_t rsts_sent = 0;
  uint64_t finacks_sent = 0;
  uint64_t banners_sent = 0;
  uint64_t icmp_replies = 0;
  uint64_t exploit_payloads_ignored = 0;  // the fidelity gap, made visible
};

class LowInteractionResponder {
 public:
  // Emulates `services` on every address of `prefix`.
  LowInteractionResponder(Ipv4Prefix prefix, std::vector<ServiceConfig> services,
                          uint64_t seed);

  // Produces the canned response for an inbound packet, or nullopt (ignored).
  // Never creates state: every packet is handled from the packet alone.
  std::optional<Packet> Respond(const PacketView& view);

  const LowInteractionStats& stats() const { return stats_; }

 private:
  const ServiceConfig* FindService(IpProto proto, uint16_t port) const;
  // Deterministic per-4-tuple initial sequence number (RFC 6528 shape): the
  // facade has no per-flow state, so its "ISN" must be recomputable from the
  // packet alone — yet stable within a flow so transcripts look stateful.
  uint32_t FlowIsn(const PacketView& view) const;

  Ipv4Prefix prefix_;
  std::vector<ServiceConfig> services_;
  uint64_t seed_;
  LowInteractionStats stats_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_LOW_INTERACTION_H_
