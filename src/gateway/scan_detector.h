// Per-source scan detection at the gateway.
//
// The gateway observes every inbound source; a source contacting many distinct farm
// addresses within a window is a scanner (worm or survey). The farm does not block
// scanners — they are the point — but the signal feeds analysis (how much of the
// telescope traffic is scanning) and the optional inbound filtering ablation.
#ifndef SRC_GATEWAY_SCAN_DETECTOR_H_
#define SRC_GATEWAY_SCAN_DETECTOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/base/time_types.h"
#include "src/net/ipv4.h"

namespace potemkin {

struct ScanDetectorConfig {
  // A source becomes a scanner after touching this many distinct destinations...
  uint32_t distinct_threshold = 8;
  // ...within this window.
  Duration window = Duration::Seconds(60);
};

class ScanDetector {
 public:
  explicit ScanDetector(const ScanDetectorConfig& config);

  // Records an inbound (source, destination) contact; returns true if the source
  // is currently classified as a scanner.
  bool Record(Ipv4Address source, Ipv4Address destination, TimePoint now);

  bool IsScanner(Ipv4Address source) const;
  size_t tracked_sources() const { return sources_.size(); }
  uint64_t scanners_flagged() const { return scanners_flagged_; }

  // Drops per-source state idle past the window (bounds memory).
  size_t ExpireIdle(TimePoint now);

 private:
  struct SourceState {
    TimePoint window_start;
    TimePoint last_seen;
    std::unordered_set<Ipv4Address> distinct;
    bool flagged = false;
  };

  ScanDetectorConfig config_;
  std::unordered_map<Ipv4Address, SourceState> sources_;
  uint64_t scanners_flagged_ = 0;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_SCAN_DETECTOR_H_
