// Per-source scan detection at the gateway.
//
// The gateway observes every inbound source; a source contacting many distinct farm
// addresses within a window is a scanner (worm or survey). The farm does not block
// scanners — they are the point — but the signal feeds analysis (how much of the
// telescope traffic is scanning) and the optional inbound filtering ablation.
//
// This runs once per inbound packet, so the per-source state is a flat
// slab-backed record sized to one cache line: distinct destinations are kept
// in a small inline array scanned linearly (membership sets this small beat
// any hash set), and the source -> slot mapping is an open-addressing
// FlatIndex. Recording a packet for a known source allocates nothing.
#ifndef SRC_GATEWAY_SCAN_DETECTOR_H_
#define SRC_GATEWAY_SCAN_DETECTOR_H_

#include <array>
#include <cstdint>

#include "src/base/flat_index.h"
#include "src/base/slab.h"
#include "src/base/time_types.h"
#include "src/net/ipv4.h"

namespace potemkin {

struct ScanDetectorConfig {
  // A source becomes a scanner after touching this many distinct destinations...
  uint32_t distinct_threshold = 8;
  // ...within this window.
  Duration window = Duration::Seconds(60);
};

class ScanDetector {
 public:
  explicit ScanDetector(const ScanDetectorConfig& config);

  // Records an inbound (source, destination) contact; returns true if the source
  // is currently classified as a scanner.
  bool Record(Ipv4Address source, Ipv4Address destination, TimePoint now);

  // True iff the most recent Record() call is what flagged its source — the
  // one-shot edge the gateway turns into a kScannerFlagged ledger event
  // without re-deriving the transition from counters.
  bool newly_flagged() const { return newly_flagged_; }

  bool IsScanner(Ipv4Address source) const;
  size_t tracked_sources() const { return slab_.live_count(); }
  uint64_t scanners_flagged() const { return scanners_flagged_; }

  // Drops per-source state idle past the window (bounds memory).
  size_t ExpireIdle(TimePoint now);

 private:
  struct SourceState {
    // Inline distinct-destination set. Counting is exact while the array has
    // room plus one step beyond it (a destination absent from a full array is
    // certainly new), i.e. for thresholds <= kMaxTracked + 1; past that a
    // revisit of an untracked destination may be overcounted. The default
    // threshold (8) and every configured threshold in the repo sit well
    // inside the exact range.
    static constexpr size_t kMaxTracked = 10;

    TimePoint window_start;
    TimePoint last_seen;
    Ipv4Address source;  // mirrors the index key, for expiry sweeps
    uint8_t distinct_count = 0;
    bool flagged = false;
    std::array<Ipv4Address, kMaxTracked> distinct;
  };
  static_assert(sizeof(SourceState) <= 64, "per-source state spills a cache line");

  ScanDetectorConfig config_;
  FlatIndex<uint32_t> index_;
  Slab<SourceState> slab_;
  uint64_t scanners_flagged_ = 0;
  bool newly_flagged_ = false;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_SCAN_DETECTOR_H_
