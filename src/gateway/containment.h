// Containment policy engine.
//
// Everything leaving a honeyfarm VM crosses the gateway, which must prevent the
// farm from attacking the real Internet while preserving enough fidelity that
// captured malware keeps behaving. The paper's options, all implemented here:
//
//   * open      — forward outbound traffic (no containment; baseline only)
//   * drop-all  — silently drop outbound traffic (safe, kills fidelity)
//   * reflect   — rewrite the destination of outbound attack traffic back into
//                 unused farm addresses, so worms propagate *inside* the farm
//
// orthogonally: an internal DNS proxy answers lookups, per-VM token buckets rate-
// limit outbound packets, and an allow-list can pass selected ports.
#ifndef SRC_GATEWAY_CONTAINMENT_H_
#define SRC_GATEWAY_CONTAINMENT_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "src/base/time_types.h"
#include "src/base/token_bucket.h"
#include "src/hv/types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

enum class OutboundMode {
  kOpen,
  kDropAll,
  kReflect,
};

const char* OutboundModeName(OutboundMode mode);

enum class OutboundAction {
  kAllow,      // pass to the real Internet
  kDrop,       // discard
  kReflect,    // rewrite destination into the farm
  kRateLimit,  // dropped by the per-VM rate limiter
  kDnsProxy,   // answered by the internal DNS proxy
  kInternal,   // destination is already inside the farm prefix
};

const char* OutboundActionName(OutboundAction action);

struct ContainmentConfig {
  OutboundMode mode = OutboundMode::kReflect;
  bool dns_proxy = true;
  // 0 disables rate limiting; otherwise per-VM outbound packets per second.
  double rate_limit_pps = 0.0;
  double rate_limit_burst = 32.0;
  // Destinations ports allowed to pass regardless of mode (paper: a narrow
  // allow-list, e.g. for controlled malware updates). Empty by default.
  std::unordered_set<uint16_t> allowed_ports;
  // Keyed reflection maps an external address to a stable internal victim, so a
  // worm revisiting the same target reaches the same VM (fidelity). The ablation
  // uses random reflection instead.
  bool keyed_reflection = true;
};

struct ContainmentStats {
  uint64_t allowed = 0;
  uint64_t dropped = 0;
  uint64_t reflected = 0;
  uint64_t rate_limited = 0;
  uint64_t dns_proxied = 0;
  uint64_t internal = 0;
  uint64_t allow_list_hits = 0;
  // Packets from *infected* VMs that reached the real Internet — the containment
  // failure metric; must be zero in drop/reflect modes.
  uint64_t escapes_from_infected = 0;
};

class ContainmentEngine {
 public:
  ContainmentEngine(const ContainmentConfig& config, Ipv4Prefix farm_prefix,
                    uint64_t seed);

  // Classifies an outbound packet from `source_vm` (infected status supplied by
  // the caller). Does not mutate the packet.
  OutboundAction Classify(const PacketView& view, VmId source_vm, bool infected,
                          TimePoint now);

  // Picks the internal victim address for reflecting a packet to `external_dst`.
  // Never returns `source_ip` (a worm must not be reflected onto itself).
  Ipv4Address ReflectTarget(Ipv4Address external_dst, Ipv4Address source_ip,
                            uint64_t salt = 0);

  const ContainmentStats& stats() const { return stats_; }
  const ContainmentConfig& config() const { return config_; }
  // Accounting hook used by the gateway once it actually forwards/drops.
  ContainmentStats& mutable_stats() { return stats_; }

 private:
  ContainmentConfig config_;
  Ipv4Prefix farm_prefix_;
  uint64_t seed_;
  uint64_t random_counter_ = 0;
  std::unordered_map<VmId, TokenBucket> rate_limiters_;
  ContainmentStats stats_;
};

}  // namespace potemkin

#endif  // SRC_GATEWAY_CONTAINMENT_H_
