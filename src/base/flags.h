// Tiny command-line flag parser for the examples and bench harnesses.
//
// Supports `--name=value`, `--name value`, and boolean `--name` / `--no-name`.
// Unrecognized arguments are collected as positionals so google-benchmark flags can
// pass through untouched.
#ifndef SRC_BASE_FLAGS_H_
#define SRC_BASE_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace potemkin {

class Flags {
 public:
  // Parses argv; never exits. `--help` text is the caller's job via `Describe`.
  static Flags Parse(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  uint64_t GetUint(const std::string& name, uint64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Every flag name that was present on the command line, sorted. Lets tools
  // reject unknown flags instead of silently ignoring typos.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace potemkin

#endif  // SRC_BASE_FLAGS_H_
