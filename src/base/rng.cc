#include "src/base/rng.h"

#include <cmath>
#include <numeric>

namespace potemkin {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

Rng Rng::Fork(uint64_t tag) const {
  // Mix the current state with the tag through splitmix to derive a child seed.
  uint64_t mix = state_[0] ^ Rotl(state_[1], 17) ^ Rotl(state_[2], 31) ^ state_[3];
  mix ^= tag * 0xd1342543de82ef95ull;
  return Rng(SplitMix64(mix));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  if (bound <= 1) {
    return 0;
  }
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double probability_true) { return NextDouble() < probability_true; }

double Rng::NextExponential(double rate) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return -std::log(u) / rate;
}

double Rng::NextPareto(double alpha, double xm) {
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::NextGaussian(double mean, double stddev) {
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

uint64_t Rng::NextGeometric(double p) {
  if (p >= 1.0) {
    return 0;
  }
  double u = NextDouble();
  while (u <= 0.0) {
    u = NextDouble();
  }
  return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    uint64_t count = 0;
    double product = NextDouble();
    while (product > limit) {
      ++count;
      product *= NextDouble();
    }
    return count;
  }
  // Normal approximation for large means; adequate for workload generation.
  const double sample = NextGaussian(mean, std::sqrt(mean));
  return sample <= 0.0 ? 0 : static_cast<uint64_t>(sample + 0.5);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) {
    return 0;
  }
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(NextBelow(i));
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace potemkin
