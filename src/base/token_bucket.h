// Token-bucket rate limiter over virtual time. The gateway uses one per VM to
// implement the paper's "rate-limit outbound traffic" containment option.
#ifndef SRC_BASE_TOKEN_BUCKET_H_
#define SRC_BASE_TOKEN_BUCKET_H_

#include <cstdint>

#include "src/base/time_types.h"

namespace potemkin {

class TokenBucket {
 public:
  // `rate_per_sec` tokens accrue per simulated second, up to `burst` tokens.
  TokenBucket(double rate_per_sec, double burst);

  // Attempts to consume `tokens` at virtual time `now`. Returns true on success.
  bool TryConsume(TimePoint now, double tokens = 1.0);

  // Time at which `tokens` will be available (may be `now` if already available).
  TimePoint AvailableAt(TimePoint now, double tokens = 1.0);

  double available(TimePoint now);
  double rate_per_sec() const { return rate_per_sec_; }

 private:
  void Refill(TimePoint now);

  double rate_per_sec_;
  double burst_;
  double tokens_;
  TimePoint last_refill_;
};

}  // namespace potemkin

#endif  // SRC_BASE_TOKEN_BUCKET_H_
