// Virtual time primitives for the discrete-event simulation.
//
// All simulated components express time as a `Duration` (signed nanoseconds) or a
// `TimePoint` (nanoseconds since simulation start). These are strong wrapper types so
// that raw integer nanoseconds, microseconds and seconds cannot be mixed up silently.
#ifndef SRC_BASE_TIME_TYPES_H_
#define SRC_BASE_TIME_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace potemkin {

// A span of simulated time, in nanoseconds. Signed so differences are well defined.
class Duration {
 public:
  constexpr Duration() : ns_(0) {}

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t u) { return Duration(u * 1000); }
  static constexpr Duration Millis(int64_t m) { return Duration(m * 1000000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr Duration Max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }
  static constexpr Duration Zero() { return Duration(0); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr int64_t micros() const { return ns_ / 1000; }
  constexpr int64_t millis() const { return ns_ / 1000000; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double millis_f() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool IsZero() const { return ns_ == 0; }
  constexpr bool IsNegative() const { return ns_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an auto-selected unit, e.g. "1.50ms", "2.3s".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

// An instant in simulated time, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() : ns_(0) {}
  static constexpr TimePoint FromNanos(int64_t n) { return TimePoint(n); }
  static constexpr TimePoint Max() {
    return TimePoint(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint(ns_ + d.nanos()); }
  constexpr TimePoint operator-(Duration d) const { return TimePoint(ns_ - d.nanos()); }
  constexpr Duration operator-(TimePoint o) const { return Duration::Nanos(ns_ - o.ns_); }
  TimePoint& operator+=(Duration d) {
    ns_ += d.nanos();
    return *this;
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr TimePoint(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

}  // namespace potemkin

#endif  // SRC_BASE_TIME_TYPES_H_
