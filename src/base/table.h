// ASCII table / CSV rendering used by the benchmark harness to print the paper's
// tables and figure data series.
#ifndef SRC_BASE_TABLE_H_
#define SRC_BASE_TABLE_H_

#include <string>
#include <vector>

namespace potemkin {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats each double with `%.*f`.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  // Renders with a header rule and right-aligned numeric-looking cells.
  std::string ToAscii() const;
  std::string ToCsv() const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace potemkin

#endif  // SRC_BASE_TABLE_H_
