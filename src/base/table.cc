#include "src/base/table.h"

#include <algorithm>
#include <cctype>

#include "src/base/strings.h"

namespace potemkin {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) {
    return false;
  }
  for (char c : cell) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != '%' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::AddRow(const std::string& label, const std::vector<double>& values,
                   int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(cells));
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      const size_t pad = widths[c] - cell.size();
      if (c > 0) {
        line += "  ";
      }
      if (LooksNumeric(cell)) {
        line += std::string(pad, ' ') + cell;
      } else {
        line += cell + std::string(pad, ' ');
      }
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line;
  };

  std::string out = render_row(headers_);
  out += '\n';
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c > 0 ? 2 : 0);
  }
  out += std::string(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
    out += '\n';
  }
  return out;
}

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') {
        out += "\"\"";
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) {
      out += ',';
    }
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ',';
      }
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace potemkin
