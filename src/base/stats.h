// Lightweight measurement primitives: histograms with quantile estimation and
// time-series recorders. These feed the analysis/ emitters that print the paper's
// tables and figures.
#ifndef SRC_BASE_STATS_H_
#define SRC_BASE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time_types.h"

namespace potemkin {

// A histogram over non-negative values with exponentially sized buckets
// (sub-bucketed for resolution), HdrHistogram style. Supports ~1% quantile error
// over a huge dynamic range with fixed memory.
class Histogram {
 public:
  Histogram();

  void Record(double value);
  void RecordN(double value, uint64_t count);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  double Mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  // Quantile in [0,1]; returns a bucket-midpoint estimate.
  double Quantile(double q) const;
  double Stddev() const;

  // One-line summary, e.g. "n=100 mean=3.2 p50=3.1 p99=8.0 max=9.2".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 sub-buckets per power of two.
  static constexpr int kBucketCount = 64 * (1 << kSubBucketBits);

  static int BucketFor(double value);
  static double BucketMidpoint(int bucket);

  std::vector<uint32_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// An append-only series of (virtual time, value) samples.
class TimeSeries {
 public:
  struct Sample {
    TimePoint time;
    double value;
  };

  void Record(TimePoint t, double value) { samples_.push_back({t, value}); }
  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  void Clear() { samples_.clear(); }

  double MaxValue() const;
  double LastValue() const;
  // Mean of values weighted by the span each sample was current (step function).
  double TimeWeightedMean(TimePoint end) const;

  // Downsamples to fixed intervals; each output point carries the maximum value
  // observed in its interval (the natural reduction for "live VM count" curves).
  std::vector<Sample> ResampleMax(Duration interval) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace potemkin

#endif  // SRC_BASE_STATS_H_
