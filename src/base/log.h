// Minimal leveled logging.
//
// The simulator is often run inside benchmarks where logging must be cheap when
// disabled: the macros below evaluate their stream arguments only when the level is
// enabled. Output goes to stderr with the virtual-time tag supplied by the caller
// where relevant.
#ifndef SRC_BASE_LOG_H_
#define SRC_BASE_LOG_H_

#include <functional>
#include <sstream>
#include <string>

namespace potemkin {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kNone = 4,
};

// Global log threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Internal sink used by the macros.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Structured-log hook: when installed, every emitted WARN/ERROR message (and
// every fatal check, with fatal=true) is reported to the hook *after* printing
// to stderr, in emission order — this is how free-form logs join the event
// ledger's ordered forensic timeline (see EventLedger::InstallLogHook). `file`
// is the log site's static __FILE__ literal; the hook may retain the pointer.
using LogHook =
    std::function<void(LogLevel level, const char* file, int line, bool fatal)>;
// Replaces the current hook; an empty hook uninstalls.
void SetLogHook(LogHook hook);

class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace potemkin

#define PK_LOG_ENABLED(level) ((level) >= ::potemkin::GetLogLevel())

#define PK_LOG(level)                      \
  if (!PK_LOG_ENABLED(level)) {            \
  } else                                   \
    ::potemkin::LogStream(level, __FILE__, __LINE__)

#define PK_DEBUG PK_LOG(::potemkin::LogLevel::kDebug)
#define PK_INFO PK_LOG(::potemkin::LogLevel::kInfo)
#define PK_WARN PK_LOG(::potemkin::LogLevel::kWarning)
#define PK_ERROR PK_LOG(::potemkin::LogLevel::kError)

// Fatal invariant check: always on, aborts with a message. Used for simulator
// invariants whose violation means the run's results are meaningless.
#define PK_CHECK(cond)                                                        \
  if (cond) {                                                                 \
  } else                                                                      \
    ::potemkin::FatalStream(__FILE__, __LINE__, #cond)

namespace potemkin {

class FatalStream {
 public:
  FatalStream(const char* file, int line, const char* condition);
  ~FatalStream();  // Aborts the process after emitting the message.

  template <typename T>
  FatalStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace potemkin

#endif  // SRC_BASE_LOG_H_
