#include "src/base/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace potemkin {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      return parts;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

namespace {

template <typename T, typename Fn>
std::optional<T> ParseWith(std::string_view text, Fn fn) {
  const std::string buf(StrTrim(text));
  if (buf.empty()) {
    return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const T value = fn(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return std::nullopt;
  }
  return value;
}

}  // namespace

std::optional<int64_t> ParseInt64(std::string_view text) {
  return ParseWith<int64_t>(
      text, [](const char* s, char** end) { return std::strtoll(s, end, 10); });
}

std::optional<uint64_t> ParseUint64(std::string_view text) {
  if (!text.empty() && StrTrim(text).front() == '-') {
    return std::nullopt;
  }
  return ParseWith<uint64_t>(
      text, [](const char* s, char** end) { return std::strtoull(s, end, 10); });
}

std::optional<double> ParseDouble(std::string_view text) {
  return ParseWith<double>(text,
                           [](const char* s, char** end) { return std::strtod(s, end); });
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) {
    return StrFormat("%llu B", static_cast<unsigned long long>(bytes));
  }
  return StrFormat("%.1f %s", value, kUnits[unit]);
}

std::string WithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  const size_t n = digits.size();
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) {
      out += ',';
    }
    out += digits[i];
  }
  return out;
}

}  // namespace potemkin
