// Small string helpers used throughout the project (printf-style formatting because
// the toolchain's libstdc++ predates std::format, splitting, joining, parsing).
#ifndef SRC_BASE_STRINGS_H_
#define SRC_BASE_STRINGS_H_

#include <cstdarg>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace potemkin {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::vector<std::string> StrSplit(std::string_view input, char delimiter);

std::string StrJoin(const std::vector<std::string>& parts, std::string_view separator);

// Trims ASCII whitespace from both ends.
std::string_view StrTrim(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);

std::optional<int64_t> ParseInt64(std::string_view text);
std::optional<uint64_t> ParseUint64(std::string_view text);
std::optional<double> ParseDouble(std::string_view text);

// Renders a byte count as a human-readable size, e.g. "4.0 KiB", "1.2 GiB".
std::string HumanBytes(uint64_t bytes);

// Renders a large count with thousands separators, e.g. "1,234,567".
std::string WithCommas(uint64_t value);

}  // namespace potemkin

#endif  // SRC_BASE_STRINGS_H_
