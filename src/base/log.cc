#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace potemkin {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               message.c_str());
}

FatalStream::FatalStream(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

FatalStream::~FatalStream() {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", Basename(file_), line_,
               condition_, stream_.str().c_str());
  std::abort();
}

}  // namespace potemkin
