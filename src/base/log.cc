#include "src/base/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace potemkin {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

// Leaked so log sites in static destructors stay safe.
LogHook& Hook() {
  static LogHook* const hook = new LogHook();
  return *hook;
}

}  // namespace

void SetLogHook(LogHook hook) { Hook() = std::move(hook); }

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
               message.c_str());
  if ((level == LogLevel::kWarning || level == LogLevel::kError) && Hook()) {
    Hook()(level, file, line, /*fatal=*/false);
  }
}

FatalStream::FatalStream(const char* file, int line, const char* condition)
    : file_(file), line_(line), condition_(condition) {}

FatalStream::~FatalStream() {
  std::fprintf(stderr, "[FATAL %s:%d] check failed: %s %s\n", Basename(file_), line_,
               condition_, stream_.str().c_str());
  // Last chance for the flight recorder: a hooked ledger turns this into a
  // kFatal event, whose trip dumps the post-mortem before the abort.
  if (Hook()) {
    Hook()(LogLevel::kError, file_, line_, /*fatal=*/true);
  }
  std::abort();
}

}  // namespace potemkin
