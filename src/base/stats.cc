#include "src/base/stats.h"

#include <algorithm>
#include <cmath>

#include "src/base/strings.h"

namespace potemkin {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::BucketFor(double value) {
  if (value <= 0.0) {
    return 0;
  }
  int exponent;
  const double mantissa = std::frexp(value, &exponent);  // mantissa in [0.5, 1)
  // Clamp the exponent range so tiny/huge values land in the edge buckets.
  exponent = std::clamp(exponent + 16, 0, 62);
  const int sub =
      static_cast<int>((mantissa - 0.5) * 2.0 * (1 << kSubBucketBits));
  const int clamped_sub = std::clamp(sub, 0, (1 << kSubBucketBits) - 1);
  return exponent * (1 << kSubBucketBits) + clamped_sub;
}

double Histogram::BucketMidpoint(int bucket) {
  const int exponent = bucket >> kSubBucketBits;
  const int sub = bucket & ((1 << kSubBucketBits) - 1);
  const double mantissa_lo = 0.5 + 0.5 * static_cast<double>(sub) / (1 << kSubBucketBits);
  const double mantissa_mid = mantissa_lo + 0.25 / (1 << kSubBucketBits);
  return std::ldexp(mantissa_mid, exponent - 16);
}

void Histogram::Record(double value) { RecordN(value, 1); }

void Histogram::RecordN(double value, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += value * static_cast<double>(count);
  sum_sq_ += value * value * static_cast<double>(count);
  buckets_[static_cast<size_t>(BucketFor(value))] += static_cast<uint32_t>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0u);
  count_ = 0;
  sum_ = sum_sq_ = min_ = max_ = 0.0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      const double estimate = BucketMidpoint(static_cast<int>(i));
      return std::clamp(estimate, min_, max_);
    }
  }
  return max_;
}

double Histogram::Stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(count_);
  const double variance = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
  return std::sqrt(variance);
}

std::string Histogram::Summary() const {
  return StrFormat("n=%llu mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
                   static_cast<unsigned long long>(count_), Mean(), Quantile(0.5),
                   Quantile(0.9), Quantile(0.99), max());
}

double TimeSeries::MaxValue() const {
  double best = 0.0;
  for (const auto& s : samples_) {
    best = std::max(best, s.value);
  }
  return best;
}

double TimeSeries::LastValue() const {
  return samples_.empty() ? 0.0 : samples_.back().value;
}

double TimeSeries::TimeWeightedMean(TimePoint end) const {
  if (samples_.empty()) {
    return 0.0;
  }
  double weighted = 0.0;
  double total = 0.0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    const TimePoint next = (i + 1 < samples_.size()) ? samples_[i + 1].time : end;
    const double span = (next - samples_[i].time).seconds();
    if (span > 0.0) {
      weighted += samples_[i].value * span;
      total += span;
    }
  }
  return total > 0.0 ? weighted / total : samples_.back().value;
}

std::vector<TimeSeries::Sample> TimeSeries::ResampleMax(Duration interval) const {
  std::vector<Sample> out;
  if (samples_.empty() || interval.nanos() <= 0) {
    return out;
  }
  TimePoint bucket_start = samples_.front().time;
  double bucket_max = samples_.front().value;
  bool have = false;
  for (const auto& s : samples_) {
    while (s.time >= bucket_start + interval) {
      if (have) {
        out.push_back({bucket_start, bucket_max});
      }
      bucket_start += interval;
      bucket_max = s.value;
      have = false;
    }
    bucket_max = have ? std::max(bucket_max, s.value) : s.value;
    have = true;
  }
  if (have) {
    out.push_back({bucket_start, bucket_max});
  }
  return out;
}

}  // namespace potemkin
