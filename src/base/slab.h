// Chunked object slab with stable addresses and a LIFO free list.
//
// Backing store for the flat hash tables on the packet path: objects are
// addressed by a dense uint32_t slot id, live in fixed-size chunks (so growth
// never moves existing objects — pointers handed out stay valid), and freed
// slots are recycled most-recently-freed-first. Iteration visits live slots in
// slot order, which is deterministic for a deterministic allocation history —
// a property the experiment harness relies on.
#ifndef SRC_BASE_SLAB_H_
#define SRC_BASE_SLAB_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/log.h"

namespace potemkin {

template <typename T>
class Slab {
 public:
  static constexpr uint32_t kInvalidSlot = 0xffffffffu;

  // Allocates a slot holding a default-constructed T. O(1) amortized.
  uint32_t Alloc() {
    uint32_t slot;
    if (free_head_ != kInvalidSlot) {
      slot = free_head_;
      free_head_ = meta_[slot].next_free;
    } else {
      slot = high_water_++;
      if ((slot >> kChunkShift) == chunks_.size()) {
        chunks_.push_back(std::make_unique<T[]>(kChunkSize));
      }
      meta_.emplace_back();
    }
    meta_[slot].live = true;
    ++live_count_;
    return slot;
  }

  // Frees a slot, resetting the object to a default-constructed state.
  void Free(uint32_t slot) {
    PK_CHECK(slot < high_water_ && meta_[slot].live) << "free of dead slab slot";
    At(slot) = T();
    meta_[slot].live = false;
    meta_[slot].next_free = free_head_;
    free_head_ = slot;
    --live_count_;
  }

  T& At(uint32_t slot) { return chunks_[slot >> kChunkShift][slot & kChunkMask]; }
  const T& At(uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & kChunkMask];
  }

  bool IsLive(uint32_t slot) const { return slot < high_water_ && meta_[slot].live; }
  size_t live_count() const { return live_count_; }
  // Total slots ever allocated (live + free-listed); bounds iteration.
  uint32_t high_water() const { return high_water_; }

  // Visits every live slot in slot order: fn(slot, T&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (uint32_t slot = 0; slot < high_water_; ++slot) {
      if (meta_[slot].live) {
        fn(slot, At(slot));
      }
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint32_t slot = 0; slot < high_water_; ++slot) {
      if (meta_[slot].live) {
        fn(slot, At(slot));
      }
    }
  }

 private:
  static constexpr uint32_t kChunkShift = 10;  // 1024 objects per chunk
  static constexpr uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkSize - 1;

  struct SlotMeta {
    uint32_t next_free = kInvalidSlot;
    bool live = false;
  };

  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<SlotMeta> meta_;
  uint32_t high_water_ = 0;
  uint32_t free_head_ = kInvalidSlot;
  size_t live_count_ = 0;
};

}  // namespace potemkin

#endif  // SRC_BASE_SLAB_H_
