// Open-addressing hash index: trivially-copyable key -> uint32_t slot id.
//
// The packet-path replacement for std::unordered_map: one flat power-of-two
// array of (key, slot) entries probed linearly, so a lookup touches one or two
// cache lines and insertion never allocates per element. Empty and tombstone
// cells are encoded as reserved slot values, so an entry for a 4-byte key is
// exactly 8 bytes — eight entries per cache line. Values are slot ids into a
// `Slab`, keeping this index pure bookkeeping. Deletions leave tombstones that
// are recycled by insertions and swept out on rehash.
#ifndef SRC_BASE_FLAT_INDEX_H_
#define SRC_BASE_FLAT_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/base/log.h"

namespace potemkin {

// Default hasher for integral keys: Fibonacci multiplication, then xor-fold so
// the mask sees the high (well-mixed) bits.
struct FlatIndexHash {
  uint64_t operator()(uint64_t key) const {
    uint64_t h = key * 0x9e3779b97f4a7c15ull;
    return h ^ (h >> 32);
  }
};

template <typename Key, typename Hash = FlatIndexHash>
class FlatIndex {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  explicit FlatIndex(size_t initial_capacity = 64) {
    size_t cap = 16;
    while (cap < initial_capacity) {
      cap <<= 1;
    }
    entries_.assign(cap, Entry{});
  }

  // Returns the slot mapped to `key`, or kNotFound.
  uint32_t Find(const Key& key) const {
    const size_t mask = entries_.size() - 1;
    for (size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      const Entry& e = entries_[i];
      if (e.key == key && e.slot < kTombstoneSlot) {
        return e.slot;
      }
      if (e.slot == kEmptySlot) {
        return kNotFound;
      }
    }
  }

  // Inserts key -> slot. The key must not already be present.
  // Rehash at 5/8 occupancy (live + tombstones): linear probing degrades
  // sharply past ~70% load, and the index is 8 bytes/entry, so trading memory
  // for short probe chains is the right side of the bargain on the packet path.
  void Insert(const Key& key, uint32_t slot) {
    PK_CHECK(slot < kTombstoneSlot) << "slot id collides with index sentinels";
    if ((live_ + tombstones_ + 1) * 8 >= entries_.size() * 5) {
      Rehash(live_ * 2 >= entries_.size() ? entries_.size() * 2 : entries_.size());
    }
    const size_t mask = entries_.size() - 1;
    for (size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      Entry& e = entries_[i];
      if (e.slot >= kTombstoneSlot) {
        if (e.slot == kTombstoneSlot) {
          --tombstones_;
        }
        e.key = key;
        e.slot = slot;
        ++live_;
        return;
      }
      PK_CHECK(!(e.key == key)) << "duplicate key in flat index";
    }
  }

  // Removes key; returns the slot it mapped to, or kNotFound.
  uint32_t Erase(const Key& key) {
    const size_t mask = entries_.size() - 1;
    for (size_t i = Hash{}(key) & mask;; i = (i + 1) & mask) {
      Entry& e = entries_[i];
      if (e.key == key && e.slot < kTombstoneSlot) {
        const uint32_t slot = e.slot;
        e.slot = kTombstoneSlot;
        --live_;
        ++tombstones_;
        return slot;
      }
      if (e.slot == kEmptySlot) {
        return kNotFound;
      }
    }
  }

  // Pre-sizes the table so `expected` live entries fit under the 5/8 rehash
  // trigger. Shard setup uses this to carve a /16's binding load into N
  // per-shard tables without rehash churn during the populate burst.
  void Reserve(size_t expected) {
    size_t cap = entries_.size();
    while ((expected + 1) * 8 >= cap * 5) {
      cap <<= 1;
    }
    if (cap > entries_.size()) {
      Rehash(cap);
    }
  }

  size_t size() const { return live_; }
  size_t capacity() const { return entries_.size(); }

 private:
  // Reserved slot values marking cell state; real slab slots stay below these.
  static constexpr uint32_t kEmptySlot = 0xffffffffu;
  static constexpr uint32_t kTombstoneSlot = 0xfffffffeu;

  struct Entry {
    Key key{};
    uint32_t slot = kEmptySlot;
  };

  void Rehash(size_t new_capacity) {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(new_capacity, Entry{});
    live_ = 0;
    tombstones_ = 0;
    for (const Entry& e : old) {
      if (e.slot < kTombstoneSlot) {
        Insert(e.key, e.slot);
      }
    }
  }

  std::vector<Entry> entries_;
  size_t live_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace potemkin

#endif  // SRC_BASE_FLAT_INDEX_H_
