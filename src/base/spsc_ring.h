// Bounded lock-free single-producer/single-consumer ring.
//
// The cross-shard handoff primitive for the sharded gateway: reflection and
// inter-backend traffic whose destination hashes to another shard is enqueued
// here instead of routed inline, so the owning shard's hit path never takes a
// lock and never touches another shard's tables. One ring per ordered
// (producer shard, consumer shard) pair keeps every ring strictly SPSC.
//
// Design is the classic cached-index SPSC queue: the producer owns `tail_`,
// the consumer owns `head_`, and each keeps a *cached* copy of the other's
// index so the steady-state push/pop touches only its own cache line — the
// cross-core load happens once per ring traversal, not once per element.
// Indices are monotonically increasing uint64s masked into the power-of-two
// slot array (no wrap ambiguity, full/empty distinguishable without a spare
// slot). All four index fields are cache-line padded so producer and consumer
// never false-share.
//
// Memory ordering: the producer's release store of `tail_` publishes the slot
// write; the consumer's acquire load of `tail_` observes it (and vice versa
// for recycled slots via `head_`). Elements are moved in and out, so move-only
// payloads (Packet) work; `T` must be default-constructible and nothrow-move.
//
// Determinism note: in the gateway's barrier-merge mode the same rings are
// used from one thread — push/pop order is then plain FIFO program order, so a
// deterministic schedule stays deterministic.
#ifndef SRC_BASE_SPSC_RING_H_
#define SRC_BASE_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace potemkin {

template <typename T>
class SpscRing {
  static_assert(std::is_nothrow_move_constructible_v<T>);
  static_assert(std::is_nothrow_move_assignable_v<T>);

 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side. Returns false when the ring is full (the element is left
  // untouched so the caller can retry or divert it).
  bool TryPush(T&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == slots_.size()) {
        return false;
      }
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        return false;
      }
    }
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-accurate emptiness (exact when called by the consumer; a stale
  // false-negative is possible from other threads, never a false-positive of
  // emptiness for elements the consumer already observed).
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Approximate occupancy (exact only when both sides are quiescent).
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  size_t capacity() const { return slots_.size(); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Consumer-owned line: read cursor plus its cached view of the producer.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  // Producer-owned line.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Trailing pad so an adjacent object cannot share the producer's line.
  [[maybe_unused]] char pad_[64 - sizeof(std::atomic<uint64_t>) -
                             sizeof(uint64_t)] = {};
};

}  // namespace potemkin

#endif  // SRC_BASE_SPSC_RING_H_
