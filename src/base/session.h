// Attack-session identity.
//
// A SessionId names one attack session: the causal chain that starts when an
// external source first touches an unbound farm address (the gateway mints the
// id at that instant) and ends when the binding's VM is retired. The id rides
// along the whole datapath — binding table, clone request, packet views handed
// to the guest, containment verdicts — so the event ledger can stitch every
// record that shares it back into one per-IP forensic timeline.
//
// The type lives in base (not obs) because every layer that touches packets
// needs it, and obs links only against base.
#ifndef SRC_BASE_SESSION_H_
#define SRC_BASE_SESSION_H_

#include <cstdint>

namespace potemkin {

using SessionId = uint32_t;

// "No session": farm-internal traffic, packets to non-farm addresses, or
// components running without a gateway in front of them.
inline constexpr SessionId kNoSession = 0;

}  // namespace potemkin

#endif  // SRC_BASE_SESSION_H_
