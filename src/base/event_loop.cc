#include "src/base/event_loop.h"

#include <algorithm>
#include <utility>

#include "src/base/log.h"

namespace potemkin {

namespace {
// Runs are sorted descending so the minimum is at back() and pops are O(1).
struct ItemGreater {
  template <typename Item>
  bool operator()(const Item& a, const Item& b) const {
    if (a.when != b.when) {
      return a.when > b.when;
    }
    return a.key > b.key;
  }
};
}  // namespace

uint32_t EventLoop::AllocSlot() {
  if (free_head_ != kNoFreeSlot) {
    const uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  const uint32_t slot = static_cast<uint32_t>(slots_.size());
  PK_CHECK(slot <= kSlotMask) << "event slot space exhausted";
  slots_.emplace_back();
  return slot;
}

void EventLoop::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;  // release the closure's captures now, not at slot reuse
  s.armed = false;
  ++s.generation;
  if (s.generation == 0) {
    ++s.generation;  // generation 0 is reserved for invalid handles
  }
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventLoop::PushItem(TimePoint when, uint32_t slot) {
  PK_CHECK(next_sequence_ < kMaxSequence) << "event sequence space exhausted";
  const uint64_t key = (next_sequence_++ << kSlotBits) | slot;
  Slot& s = slots_[slot];
  s.armed_key = key;
  s.in_queue = true;
  const Item item{when, key};
  if (!stage_nonempty_ || ItemLess(item, stage_min_)) {
    stage_min_ = item;
    stage_nonempty_ = true;
  }
  stage_.push_back(item);
  ++total_items_;
  if (stage_.size() >= kMaxStage) {
    Flush();
  }
}

std::vector<EventLoop::Item> EventLoop::TakeBuffer() {
  if (!pool_.empty()) {
    std::vector<Item> buffer = std::move(pool_.back());
    pool_.pop_back();
    return buffer;
  }
  return {};
}

void EventLoop::DropRun(size_t index) {
  runs_[index].clear();
  pool_.push_back(std::move(runs_[index]));
  runs_.erase(runs_.begin() + static_cast<ptrdiff_t>(index));
}

void EventLoop::Flush() {
  if (stage_.empty()) {
    stage_nonempty_ = false;
    return;
  }
  std::sort(stage_.begin(), stage_.end(), ItemGreater{});
  runs_.push_back(std::move(stage_));
  stage_ = TakeBuffer();
  stage_nonempty_ = false;
  if (runs_.size() > kMaxRuns) {
    MergeSmallestRuns();
  }
}

void EventLoop::MergeSmallestRuns() {
  // Merge the two smallest runs (ties: lower index) — a deterministic policy
  // under which each item is merged O(log pending) times over its lifetime.
  while (runs_.size() > kMaxRuns) {
    size_t a = 0, b = 1;
    if (runs_[b].size() < runs_[a].size()) {
      std::swap(a, b);
    }
    for (size_t i = 2; i < runs_.size(); ++i) {
      if (runs_[i].size() < runs_[a].size()) {
        b = a;
        a = i;
      } else if (runs_[i].size() < runs_[b].size()) {
        b = i;
      }
    }
    std::vector<Item> merged = TakeBuffer();
    merged.resize(runs_[a].size() + runs_[b].size());
    std::merge(runs_[a].begin(), runs_[a].end(), runs_[b].begin(), runs_[b].end(),
               merged.begin(), ItemGreater{});
    std::swap(runs_[a], merged);
    merged.clear();
    pool_.push_back(std::move(merged));
    DropRun(b);
  }
}

EventLoop::Item* EventLoop::PeekLive() {
  for (;;) {
    size_t best = runs_.size();
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (best == runs_.size() || ItemLess(runs_[i].back(), runs_[best].back())) {
        best = i;
      }
    }
    if (stage_nonempty_ &&
        (best == runs_.size() || ItemLess(stage_min_, runs_[best].back()))) {
      // The next event to fire may still be in staging: sort it into a run.
      Flush();
      continue;
    }
    if (best == runs_.size()) {
      return nullptr;
    }
    Item& tip = runs_[best].back();
    if (stale_items_ != 0 && ItemStale(tip)) {
      runs_[best].pop_back();
      --total_items_;
      --stale_items_;
      if (runs_[best].empty()) {
        DropRun(best);
      }
      continue;
    }
    peeked_run_ = best;
    return &tip;
  }
}

void EventLoop::PopPeeked() {
  std::vector<Item>& run = runs_[peeked_run_];
  run.pop_back();
  --total_items_;
  if (run.empty()) {
    DropRun(peeked_run_);
  }
}

EventHandle EventLoop::Schedule(TimePoint when, Duration period, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  const uint32_t slot = AllocSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.when = when;
  s.period = period;
  s.armed = true;
  PushItem(when, slot);
  ++live_events_;
  return EventHandle(slot, s.generation);
}

bool EventLoop::Cancel(EventHandle handle) {
  if (!SlotMatches(handle)) {
    return false;
  }
  if (slots_[handle.slot_].in_queue) {
    ++stale_items_;  // its queue item outlives the slot; skipped at the tips
  }
  FreeSlot(handle.slot_);
  --live_events_;
  CompactIfBloated();
  return true;
}

void EventLoop::CompactIfBloated() {
  // Cancelled events leave 16-byte stale items in the runs. Filter them out
  // once they outnumber live items (amortized O(1) per cancel), so a
  // cancel/re-arm loop — e.g. a recycler re-arming far-future timers forever —
  // runs in bounded space.
  if (stale_items_ < 64 || stale_items_ * 2 < total_items_) {
    return;
  }
  for (size_t i = runs_.size(); i-- > 0;) {
    std::erase_if(runs_[i], [this](const Item& item) { return ItemStale(item); });
    if (runs_[i].empty()) {
      DropRun(i);
    }
  }
  std::erase_if(stage_, [this](const Item& item) { return ItemStale(item); });
  stage_nonempty_ = !stage_.empty();
  if (stage_nonempty_) {
    stage_min_ = *std::min_element(stage_.begin(), stage_.end(),
                                   [](const Item& a, const Item& b) {
                                     return ItemLess(a, b);
                                   });
  }
  total_items_ = stage_.size();
  for (const std::vector<Item>& run : runs_) {
    total_items_ += run.size();
  }
  stale_items_ = 0;
}

void EventLoop::Execute(const Item& item) {
  const uint32_t slot_id = static_cast<uint32_t>(item.key & kSlotMask);
  Slot& s = slots_[slot_id];
  s.in_queue = false;
  now_ = item.when;
  ++executed_events_;
  // Move the callback out: running it may grow slots_ (invalidating `s`), cancel
  // this very event, or schedule new ones.
  Callback cb = std::move(s.cb);
  const bool periodic = !s.period.IsZero();
  const uint32_t generation = s.generation;
  if (!periodic) {
    FreeSlot(slot_id);
    --live_events_;
  }
  cb();
  if (periodic) {
    Slot& after = slots_[slot_id];
    if (after.armed && after.generation == generation) {
      // Not cancelled during execution: retain the callback and re-arm.
      after.cb = std::move(cb);
      after.when = item.when + after.period;
      PushItem(after.when, slot_id);
    }
  }
}

TimePoint EventLoop::NextEventTime() {
  Item* tip = PeekLive();
  return tip == nullptr ? TimePoint::Max() : tip->when;
}

bool EventLoop::Step() {
  Item* tip = PeekLive();
  if (tip == nullptr) {
    return false;
  }
  const Item item = *tip;
  PopPeeked();
  Execute(item);
  return true;
}

uint64_t EventLoop::RunUntil(TimePoint deadline) {
  uint64_t executed = 0;
  for (Item* tip; (tip = PeekLive()) != nullptr;) {
    if (tip->when > deadline) {
      now_ = deadline;
      return executed;
    }
    const Item item = *tip;
    PopPeeked();
    Execute(item);
    ++executed;
  }
  if (deadline != TimePoint::Max() && deadline > now_) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace potemkin
