#include "src/base/event_loop.h"

#include <memory>
#include <unordered_map>

namespace potemkin {

namespace {
// Cancellation index shared by all loops would be wrong; instead each loop tracks its
// own pending entries. The map lives here as a member-like static-free helper is not
// possible, so we keep it inside the loop via an intrusive flag: `Cancel` marks the
// entry and the pop path skips it. The index below maps handle ids to entries.
}  // namespace

EventLoop::~EventLoop() {
  while (!queue_.empty()) {
    delete queue_.top();
    queue_.pop();
  }
}

EventHandle EventLoop::ScheduleAt(TimePoint when, Callback cb) {
  if (when < now_) {
    when = now_;
  }
  auto* entry = new Entry{when, next_sequence_++, next_id_++, std::move(cb), false};
  queue_.push(entry);
  index_[entry->id] = entry;
  ++live_events_;
  return EventHandle(entry->id);
}

bool EventLoop::Cancel(EventHandle handle) {
  auto it = index_.find(handle.id());
  if (it == index_.end() || it->second->cancelled) {
    return false;
  }
  it->second->cancelled = true;
  --live_events_;
  index_.erase(it);
  return true;
}

bool EventLoop::Step() {
  while (!queue_.empty()) {
    Entry* entry = queue_.top();
    queue_.pop();
    if (entry->cancelled) {
      delete entry;
      continue;
    }
    index_.erase(entry->id);
    --live_events_;
    now_ = entry->when;
    Callback cb = std::move(entry->cb);
    delete entry;
    ++executed_events_;
    cb();
    return true;
  }
  return false;
}

uint64_t EventLoop::RunUntil(TimePoint deadline) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    Entry* entry = queue_.top();
    if (entry->cancelled) {
      queue_.pop();
      delete entry;
      continue;
    }
    if (entry->when > deadline) {
      now_ = deadline;
      return executed;
    }
    if (Step()) {
      ++executed;
    }
  }
  if (deadline != TimePoint::Max() && deadline > now_) {
    now_ = deadline;
  }
  return executed;
}

}  // namespace potemkin
