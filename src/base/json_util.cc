#include "src/base/json_util.h"

#include <cmath>
#include <cstdio>

namespace potemkin {

void AppendJsonString(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace potemkin
