#include "src/base/token_bucket.h"

#include <algorithm>

namespace potemkin {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec), burst_(burst), tokens_(burst) {}

void TokenBucket::Refill(TimePoint now) {
  if (now <= last_refill_) {
    return;
  }
  const double elapsed = (now - last_refill_).seconds();
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
  last_refill_ = now;
}

bool TokenBucket::TryConsume(TimePoint now, double tokens) {
  Refill(now);
  if (tokens_ + 1e-12 >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

TimePoint TokenBucket::AvailableAt(TimePoint now, double tokens) {
  Refill(now);
  if (tokens_ >= tokens) {
    return now;
  }
  // A request above the burst capacity can never be satisfied: refills cap at
  // burst_, so projecting deficit/rate would name a time at which the tokens
  // still would not be there.
  if (rate_per_sec_ <= 0.0 || tokens > burst_) {
    return TimePoint::Max();
  }
  const double deficit = tokens - tokens_;
  return now + Duration::Seconds(deficit / rate_per_sec_);
}

double TokenBucket::available(TimePoint now) {
  Refill(now);
  return tokens_;
}

}  // namespace potemkin
