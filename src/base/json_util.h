// Shared JSON emission helpers for every artifact writer in the farm (BENCH
// reports, health snapshots, telemetry time series, trajectory entries).
//
// One definition of the escaping and number-formatting rules keeps artifacts
// byte-level comparable across tools: the CI jobs byte-compare repeated runs
// and string-scan the output, so two writers disagreeing about how to format
// `1e15` or escape a quote would silently break those gates.
//
// Appenders never allocate beyond growing `out` — callers that pre-reserve the
// destination string (the telemetry exporter's line ring does) stay
// allocation-free in steady state.
#ifndef SRC_BASE_JSON_UTIL_H_
#define SRC_BASE_JSON_UTIL_H_

#include <string>
#include <string_view>

namespace potemkin {

// Appends `value` as a quoted JSON string. Escapes `"` `\` `\n` like the
// historical per-tool copies did, plus `\uXXXX` for any other control byte
// (< 0x20) so a hostile metric label can never produce invalid JSON.
void AppendJsonString(std::string& out, std::string_view value);

// Appends `value` as a JSON number: integral values below 1e15 print as
// integers (`%.0f`), everything else round-trips via `%.17g`; non-finite
// values emit `null` (JSON has no NaN/Inf).
void AppendJsonNumber(std::string& out, double value);

}  // namespace potemkin

#endif  // SRC_BASE_JSON_UTIL_H_
