// Discrete-event simulation core.
//
// The entire honeyfarm (gateway, hosts, guests, links, worms) is driven by one
// `EventLoop`: components schedule callbacks at virtual times and the loop executes
// them in timestamp order, advancing a virtual clock. The loop is single-threaded
// and fully deterministic given a fixed schedule, which is what lets the benchmark
// harness reproduce the paper's time-based figures exactly across runs.
//
// Storage is a slab of event slots (scheduling and cancellation never allocate
// per event; `Cancel` reclaims its slot eagerly) plus a merge queue of 16-byte
// (when, sequence|slot) items: recent schedules accumulate in an unsorted
// staging buffer that is sorted into a run only when one of its events is next
// to fire, and the queue keeps at most a handful of sorted runs, popping the
// minimal run tip. Sorting and merging are branch-predictable linear passes, so
// the per-event cost is far below a binary heap's mispredicting sift, while the
// pop order is *exactly* (when, sequence) — the run partition only changes how
// work is batched, never which item is the minimum. Cancelled events leave
// stale items that are skipped at the tips and compacted once they outnumber
// live ones. Handles are generation-tagged so a stale handle (slot since
// reused) can never cancel someone else's event.
#ifndef SRC_BASE_EVENT_LOOP_H_
#define SRC_BASE_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/time_types.h"

namespace potemkin {

// Handle for a scheduled event; allows cancellation. A handle stays valid for a
// periodic event across re-arms, until the event is cancelled.
class EventHandle {
 public:
  EventHandle() = default;
  bool IsValid() const { return generation_ != 0; }

 private:
  friend class EventLoop;
  EventHandle(uint32_t slot, uint32_t generation)
      : slot_(slot), generation_(generation) {}
  uint32_t slot_ = 0;
  uint32_t generation_ = 0;
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  ~EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current virtual time.
  TimePoint Now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when`. Events scheduled in the
  // past run at the current time. Returns a handle usable with `Cancel`.
  EventHandle ScheduleAt(TimePoint when, Callback cb) {
    return Schedule(when, Duration::Zero(), std::move(cb));
  }

  // Schedules `cb` to run `delay` after the current time.
  EventHandle ScheduleAfter(Duration delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Schedules `cb` to run every `period`, first at Now() + period. The callback
  // object is retained across firings (no per-tick closure allocation) and the
  // returned handle remains cancellable for the lifetime of the series. A
  // periodic event counts as one pending event; the loop is never Empty() while
  // one is armed, so drive it with RunUntil/RunFor rather than RunAll.
  EventHandle SchedulePeriodic(Duration period, Callback cb) {
    return Schedule(now_ + period, period, std::move(cb));
  }

  // Cancels a pending event. Returns true if the event existed and had not yet run
  // (for periodic events: stops the series). The slot is reclaimed immediately.
  bool Cancel(EventHandle handle);

  // Runs events until the queue is empty or `deadline` is reached. The clock stops
  // at the timestamp of the last event executed (or at `deadline` if it was hit).
  // Returns the number of events executed.
  uint64_t RunUntil(TimePoint deadline);

  // Runs all pending events (including ones scheduled while running).
  uint64_t RunAll() { return RunUntil(TimePoint::Max()); }

  // Runs events for a span of virtual time from Now().
  uint64_t RunFor(Duration span) { return RunUntil(now_ + span); }

  // Executes at most one event; returns false if the queue was empty.
  bool Step();

  // Timestamp of the earliest pending event without executing it, or
  // TimePoint::Max() when no events are pending. Non-const: peeking may flush
  // the staging buffer into a sorted run (it never pops or reorders anything).
  // The sharded gateway's barrier-merge driver uses this to advance multiple
  // shard loops in lockstep virtual-time ticks.
  TimePoint NextEventTime();

  bool Empty() const { return live_events_ == 0; }
  uint64_t pending_events() const { return live_events_; }
  uint64_t executed_events() const { return executed_events_; }

  // Introspection for capacity regression tests: the slab never holds more slots
  // than the peak number of simultaneously live events, and the queue stays
  // within a constant factor of it even under cancel/re-arm churn.
  size_t slab_slots() const { return slots_.size(); }
  size_t heap_items() const { return total_items_; }

 private:
  // Queue item keys pack (sequence << kSlotBits) | slot. Sequence numbers are
  // globally unique, so ordering by (when, key) is exactly the documented
  // (when, sequence) FIFO order, and a slot's current key doubles as a staleness
  // check: a popped item whose key no longer matches its slot was cancelled.
  static constexpr uint32_t kSlotBits = 24;  // up to 16M concurrent events
  static constexpr uint32_t kSlotMask = (1u << kSlotBits) - 1;
  static constexpr uint64_t kMaxSequence = 1ull << (64 - kSlotBits);

  // Merge-queue shape: at most kMaxRuns sorted runs (then the two smallest are
  // merged — a predictable linear pass), and staging is force-flushed at
  // kMaxStage so a sort never exceeds that many items.
  static constexpr size_t kMaxRuns = 8;
  static constexpr size_t kMaxStage = 4096;

  struct Slot {
    Callback cb;
    union {
      uint64_t armed_key;  // key of this slot's live queue item (while armed)
      uint32_t next_free;  // free-list link (while free)
    };
    TimePoint when;           // next firing time (for periodic re-arm)
    Duration period;          // zero for one-shot events
    uint32_t generation = 1;  // bumped on every free; 0 is never a live value
    bool armed = false;
    bool in_queue = false;  // false while its item is popped for execution

    Slot() : armed_key(0) {}
  };
  struct Item {
    TimePoint when;
    uint64_t key;  // (sequence << kSlotBits) | slot
  };

  static bool ItemLess(const Item& a, const Item& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.key < b.key;
  }

  EventHandle Schedule(TimePoint when, Duration period, Callback cb);
  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void PushItem(TimePoint when, uint32_t slot);
  // Sorts staging into a new run (and merges runs if there are too many).
  void Flush();
  void MergeSmallestRuns();
  // Returns the minimal live item (skimming stale tips, flushing staging if its
  // minimum could be global), or nullptr if no live items remain. The returned
  // pointer is the tip of run `peeked_run_`; PopPeeked() removes it.
  Item* PeekLive();
  void PopPeeked();
  void DropRun(size_t index);
  std::vector<Item> TakeBuffer();
  void CompactIfBloated();
  void Execute(const Item& item);

  bool ItemStale(const Item& item) const {
    const Slot& s = slots_[item.key & kSlotMask];
    return !s.armed || s.armed_key != item.key;
  }

  bool SlotMatches(const EventHandle& handle) const {
    return handle.generation_ != 0 && handle.slot_ < slots_.size() &&
           slots_[handle.slot_].armed &&
           slots_[handle.slot_].generation == handle.generation_;
  }

  TimePoint now_;
  uint64_t next_sequence_ = 1;
  uint64_t live_events_ = 0;
  uint64_t executed_events_ = 0;
  uint64_t stale_items_ = 0;
  size_t total_items_ = 0;  // runs + staging, including stale entries
  std::vector<Slot> slots_;
  std::vector<std::vector<Item>> runs_;  // each sorted descending; min at back()
  std::vector<Item> stage_;              // unsorted recent pushes
  std::vector<std::vector<Item>> pool_;  // retired buffers, capacity retained
  Item stage_min_{};                     // minimum of stage_ (may be stale)
  bool stage_nonempty_ = false;
  size_t peeked_run_ = 0;
  uint32_t free_head_ = kNoFreeSlot;
  static constexpr uint32_t kNoFreeSlot = 0xffffffffu;
};

}  // namespace potemkin

#endif  // SRC_BASE_EVENT_LOOP_H_
