// Discrete-event simulation core.
//
// The entire honeyfarm (gateway, hosts, guests, links, worms) is driven by one
// `EventLoop`: components schedule callbacks at virtual times and the loop executes
// them in timestamp order, advancing a virtual clock. The loop is single-threaded
// and fully deterministic given a fixed schedule, which is what lets the benchmark
// harness reproduce the paper's time-based figures exactly across runs.
#ifndef SRC_BASE_EVENT_LOOP_H_
#define SRC_BASE_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/base/time_types.h"

namespace potemkin {

// Handle for a scheduled event; allows cancellation.
class EventHandle {
 public:
  EventHandle() : id_(0) {}
  explicit EventHandle(uint64_t id) : id_(id) {}
  uint64_t id() const { return id_; }
  bool IsValid() const { return id_ != 0; }

 private:
  uint64_t id_;
};

class EventLoop {
 public:
  using Callback = std::function<void()>;

  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Current virtual time.
  TimePoint Now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when`. Events scheduled in the
  // past run at the current time. Returns a handle usable with `Cancel`.
  EventHandle ScheduleAt(TimePoint when, Callback cb);

  // Schedules `cb` to run `delay` after the current time.
  EventHandle ScheduleAfter(Duration delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancels a pending event. Returns true if the event existed and had not yet run.
  bool Cancel(EventHandle handle);

  // Runs events until the queue is empty or `deadline` is reached. The clock stops
  // at the timestamp of the last event executed (or at `deadline` if it was hit).
  // Returns the number of events executed.
  uint64_t RunUntil(TimePoint deadline);

  // Runs all pending events (including ones scheduled while running).
  uint64_t RunAll() { return RunUntil(TimePoint::Max()); }

  // Runs events for a span of virtual time from Now().
  uint64_t RunFor(Duration span) { return RunUntil(now_ + span); }

  // Executes at most one event; returns false if the queue was empty.
  bool Step();

  bool Empty() const { return live_events_ == 0; }
  uint64_t pending_events() const { return live_events_; }
  uint64_t executed_events() const { return executed_events_; }

 private:
  struct Entry {
    TimePoint when;
    uint64_t sequence;  // FIFO tiebreak among same-timestamp events.
    uint64_t id;
    Callback cb;
    bool cancelled = false;
  };
  struct EntryOrder {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->when != b->when) {
        return a->when > b->when;  // min-heap on time
      }
      return a->sequence > b->sequence;
    }
  };

  TimePoint now_;
  uint64_t next_sequence_ = 1;
  uint64_t next_id_ = 1;
  uint64_t live_events_ = 0;
  uint64_t executed_events_ = 0;
  std::priority_queue<Entry*, std::vector<Entry*>, EntryOrder> queue_;
  std::unordered_map<uint64_t, Entry*> index_;
};

}  // namespace potemkin

#endif  // SRC_BASE_EVENT_LOOP_H_
