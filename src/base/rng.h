// Deterministic pseudo-random number generation for the simulation.
//
// Every stochastic component (worm target selection, radiation arrivals, guest page
// touching) owns an `Rng` seeded from the experiment seed, so whole experiments are
// reproducible bit-for-bit. The core generator is xoshiro256**, which is fast, has a
// 256-bit state and passes BigCrush; seeding uses splitmix64 as recommended by its
// authors.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace potemkin {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Derives an independent child generator; children with distinct tags are
  // statistically independent streams.
  Rng Fork(uint64_t tag) const;

  uint64_t NextU64();
  // Uniform in [0, bound), bias-free via rejection.
  uint64_t NextBelow(uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);
  // Uniform double in [0, 1).
  double NextDouble();
  bool NextBool(double probability_true);

  // Exponential inter-arrival sample with the given rate (events per unit).
  double NextExponential(double rate);
  // Pareto (heavy-tailed) sample with shape `alpha` and minimum `xm`.
  double NextPareto(double alpha, double xm);
  // Standard-normal via Box-Muller.
  double NextGaussian(double mean, double stddev);
  // Geometric: number of failures before first success with probability p.
  uint64_t NextGeometric(double p);
  // Poisson-distributed count with the given mean (Knuth for small, normal approx
  // for large means).
  uint64_t NextPoisson(double mean);

  // Samples an index according to the given (unnormalized) weights.
  size_t NextWeighted(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
};

}  // namespace potemkin

#endif  // SRC_BASE_RNG_H_
