#include "src/base/time_types.h"

#include <cstdio>

namespace potemkin {

namespace {

std::string FormatWithUnit(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", value, unit);
  return buf;
}

}  // namespace

std::string Duration::ToString() const {
  const double ns = static_cast<double>(ns_);
  const double abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns < 1e3) {
    return FormatWithUnit(ns, "ns");
  }
  if (abs_ns < 1e6) {
    return FormatWithUnit(ns / 1e3, "us");
  }
  if (abs_ns < 1e9) {
    return FormatWithUnit(ns / 1e6, "ms");
  }
  return FormatWithUnit(ns / 1e9, "s");
}

std::string TimePoint::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t=%.6fs", seconds());
  return buf;
}

}  // namespace potemkin
