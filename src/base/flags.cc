#include "src/base/flags.h"

#include "src/base/strings.h"

namespace potemkin {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (StartsWith(arg, "no-")) {
      flags.values_[arg.substr(3)] = "false";
      continue;
    }
    // `--name value` when the next token is not itself a flag; else boolean true.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[arg] = argv[i + 1];
      ++i;
    } else {
      flags.values_[arg] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const { return values_.count(name) > 0; }

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) {
    names.push_back(name);  // std::map iteration is already sorted
  }
  return names;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return ParseInt64(it->second).value_or(default_value);
}

uint64_t Flags::GetUint(const std::string& name, uint64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return ParseUint64(it->second).value_or(default_value);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return ParseDouble(it->second).value_or(default_value);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  return default_value;
}

}  // namespace potemkin
