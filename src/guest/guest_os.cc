#include "src/guest/guest_os.h"

#include "src/base/log.h"
#include "src/guest/persona/persona.h"

namespace potemkin {

namespace {

bool AnyPersona(const std::vector<ServiceConfig>& services) {
  for (const auto& service : services) {
    if (service.persona != PersonaKind::kNone) {
      return true;
    }
  }
  return false;
}

}  // namespace

GuestOs::GuestOs(VirtualMachine* vm, const GuestOsConfig& config, Rng rng)
    : vm_(vm),
      config_(config),
      obs_(ObsOrDefault(config.obs)),
      rng_(rng),
      tcp_stack_(rng.Fork(0x7c9)) {
  if (AnyPersona(config_.services)) {
    persona_ = std::make_unique<PersonaEngine>(rng.Fork(0x9e2), config.obs);
  }
}

GuestOs::~GuestOs() = default;

const ServiceConfig* GuestOs::FindService(IpProto proto, uint16_t port) const {
  for (const auto& service : config_.services) {
    if (service.proto == proto && service.port == port) {
      return &service;
    }
  }
  return nullptr;
}

void GuestOs::TouchKernelPages() {
  for (uint32_t i = 0; i < config_.kernel_pages_per_packet; ++i) {
    const Gpfn gpfn =
        config_.kernel_base_gpfn + (kernel_cursor_ % config_.kernel_pages);
    ++kernel_cursor_;
    if (vm_->memory().TouchPages(gpfn, 1) == MemAccessResult::kOutOfMemory) {
      ++stats_.oom_events;
      return;
    }
  }
}

void GuestOs::TouchHeapPages(uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    const Gpfn gpfn = config_.heap_base_gpfn + (heap_cursor_ % config_.heap_pages);
    ++heap_cursor_;
    if (vm_->memory().TouchPages(gpfn, 1) == MemAccessResult::kOutOfMemory) {
      ++stats_.oom_events;
      return;
    }
  }
}

void GuestOs::SendTcpSegment(const PacketView& request, uint8_t flags, uint32_t seq,
                             uint32_t ack, std::vector<uint8_t> payload) {
  PacketSpec spec;
  spec.src_mac = vm_->mac();
  spec.dst_mac = request.eth().src;
  spec.src_ip = request.ip().dst;
  spec.dst_ip = request.ip().src;
  spec.proto = IpProto::kTcp;
  spec.src_port = request.tcp().dst_port;
  spec.dst_port = request.tcp().src_port;
  spec.tcp_flags = flags;
  spec.seq = seq;
  spec.ack = ack;
  const size_t response_bytes = payload.size();
  spec.payload = std::move(payload);
  ++stats_.responses_sent;
  obs_.ledger.Append(LedgerEvent::kGuestResponse, request.session(), now_.nanos(),
                     request.dst_port(), response_bytes);
  vm_->Transmit(BuildPacket(spec));
}

void GuestOs::SendTcpReply(const PacketView& request, uint8_t flags,
                           std::vector<uint8_t> payload) {
  // Simplified sequencing: ack everything we saw. RFC 793 SEG.LEN is additive —
  // payload octets plus one each for SYN and FIN — so a data-bearing SYN or FIN
  // is acked in full, matching the strict stack and the low-interaction facade.
  const uint32_t payload_len = static_cast<uint32_t>(request.l4_payload().size());
  const uint32_t seg_len = payload_len +
                           ((request.tcp().flags & TcpFlags::kSyn) ? 1u : 0u) +
                           ((request.tcp().flags & TcpFlags::kFin) ? 1u : 0u);
  const uint32_t ack = request.tcp().seq + seg_len;
  SendTcpSegment(request, flags, static_cast<uint32_t>(rng_.NextU64()), ack,
                 std::move(payload));
}

void GuestOs::SendUdpReply(const PacketView& request, std::vector<uint8_t> payload) {
  PacketSpec spec;
  spec.src_mac = vm_->mac();
  spec.dst_mac = request.eth().src;
  spec.src_ip = request.ip().dst;
  spec.dst_ip = request.ip().src;
  spec.proto = IpProto::kUdp;
  spec.src_port = request.udp().dst_port;
  spec.dst_port = request.udp().src_port;
  const size_t response_bytes = payload.size();
  spec.payload = std::move(payload);
  ++stats_.responses_sent;
  obs_.ledger.Append(LedgerEvent::kGuestResponse, request.session(), now_.nanos(),
                     request.udp().dst_port, response_bytes);
  vm_->Transmit(BuildPacket(spec));
}

void GuestOs::SendIcmpEchoReply(const PacketView& request) {
  PacketSpec spec;
  spec.src_mac = vm_->mac();
  spec.dst_mac = request.eth().src;
  spec.src_ip = request.ip().dst;
  spec.dst_ip = request.ip().src;
  spec.proto = IpProto::kIcmp;
  spec.icmp_type = 0;  // echo reply
  spec.icmp_id = request.icmp().id;
  spec.icmp_seq = request.icmp().seq;
  spec.payload.assign(request.l4_payload().begin(), request.l4_payload().end());
  ++stats_.responses_sent;
  obs_.ledger.Append(LedgerEvent::kGuestResponse, request.session(), now_.nanos(),
                     0, spec.payload.size());
  vm_->Transmit(BuildPacket(spec));
}

void GuestOs::ServeRequest(const ServiceConfig& service, const PacketView& view,
                           const SegmentDecision* strict) {
  ++stats_.requests_served;
  obs_.ledger.Append(LedgerEvent::kGuestRequest, view.session(), now_.nanos(),
                     view.dst_port(), view.l4_payload().size());
  TouchHeapPages(service.pages_touched_per_request);
  if (service.vulnerability &&
      service.vulnerability->Matches(view.ip().proto, view.dst_port(),
                                     view.l4_payload())) {
    ++stats_.exploits_received;
    obs_.ledger.Append(LedgerEvent::kExploit, view.session(), now_.nanos(),
                       view.ip().src.value(), view.dst_port());
    const bool newly_infected = !vm_->infected();
    vm_->set_infected(true);
    if (newly_infected && infection_observer_) {
      infection_observer_(*this, view);
    }
    return;  // compromised service does not send its normal response
  }
  if (service.persona != PersonaKind::kNone && persona_ != nullptr &&
      service.proto == IpProto::kTcp) {
    ServePersona(service, view, strict);
    return;
  }
  if (!service.banner.empty()) {
    if (service.proto == IpProto::kTcp) {
      if (strict != nullptr) {
        // Strict mode: the reply carries the stack's sequence numbers, not the
        // simplified random-seq sequencing.
        SendTcpSegment(view, TcpFlags::kPsh | TcpFlags::kAck, strict->reply_seq,
                       strict->reply_ack, service.banner);
      } else {
        SendTcpReply(view, TcpFlags::kPsh | TcpFlags::kAck, service.banner);
      }
    } else {
      SendUdpReply(view, service.banner);
    }
  }
}

void GuestOs::ServePersona(const ServiceConfig& service, const PacketView& view,
                           const SegmentDecision* strict) {
  PersonaReply reply = persona_->OnData(service, view, now_.nanos());
  TouchHeapPages(reply.extra_pages);
  if (reply.payload.empty()) {
    return;
  }
  uint8_t flags = TcpFlags::kPsh | TcpFlags::kAck;
  if (reply.close) {
    flags |= TcpFlags::kFin;  // lockout: server closes after the final message
  }
  if (strict != nullptr) {
    SendTcpSegment(view, flags, strict->reply_seq, strict->reply_ack,
                   std::move(reply.payload));
  } else {
    SendTcpReply(view, flags, std::move(reply.payload));
  }
}

void GuestOs::HandleTcpStrict(const PacketView& view) {
  const ServiceConfig* service = FindService(IpProto::kTcp, view.tcp().dst_port);
  const uint8_t flags = view.tcp().flags;

  // Replies to connections initiated from inside the guest bypass the server
  // stack entirely (they are not addressed to a listener).
  if (service == nullptr && (flags & TcpFlags::kAck) && client_handler_) {
    client_handler_(*this, view);
    return;
  }
  if (++packets_since_expiry_ >= 64) {
    packets_since_expiry_ = 0;
    tcp_stack_.ExpireIdle(vm_->last_activity(), config_.tcp_idle_timeout);
  }
  const SegmentDecision decision =
      tcp_stack_.OnSegment(view, service != nullptr, vm_->last_activity());
  switch (decision.action) {
    case SegmentAction::kReplySynAck:
      SendTcpSegment(view, TcpFlags::kSyn | TcpFlags::kAck, decision.reply_seq,
                     decision.reply_ack, {});
      break;
    case SegmentAction::kReplyRst:
      ++stats_.rst_sent;
      SendTcpSegment(view,
                     TcpFlags::kRst |
                         (decision.rst_has_ack ? TcpFlags::kAck : uint8_t{0}),
                     decision.reply_seq, decision.reply_ack, {});
      break;
    case SegmentAction::kEstablished:
      // accept() completed: banner-first personas greet the new connection.
      if (service != nullptr && service->persona != PersonaKind::kNone &&
          persona_ != nullptr) {
        PersonaReply greeting = persona_->OnConnect(*service, view, now_.nanos());
        if (!greeting.payload.empty()) {
          SendTcpSegment(view, TcpFlags::kPsh | TcpFlags::kAck,
                         decision.reply_seq, decision.reply_ack,
                         std::move(greeting.payload));
        }
      }
      break;
    case SegmentAction::kReplyFinAck:
      SendTcpSegment(view, TcpFlags::kFin | TcpFlags::kAck, decision.reply_seq,
                     decision.reply_ack, {});
      break;
    case SegmentAction::kDeliverPayload:
      if (service != nullptr) {
        ServeRequest(*service, view, &decision);
      }
      break;
    case SegmentAction::kDeliverPayloadAndClose:
      // Data rode the FIN: the payload still reaches the service, then the
      // close is acknowledged (the FIN|ACK's ack covers payload + FIN octet).
      if (service != nullptr) {
        ServeRequest(*service, view, &decision);
      }
      SendTcpSegment(view, TcpFlags::kFin | TcpFlags::kAck, decision.reply_seq,
                     decision.reply_ack, {});
      break;
    case SegmentAction::kIgnore:
      break;
  }
  if (persona_ != nullptr && (flags & (TcpFlags::kFin | TcpFlags::kRst)) != 0) {
    persona_->OnClose(view);  // peer teardown drops persona session state
  }
}

void GuestOs::HandleFrame(const Packet& frame, TimePoint now) {
  const auto view = PacketView::Parse(frame);
  if (!view) {
    return;
  }
  HandleFrame(frame, *view, now);
}

void GuestOs::HandleFrame(const Packet& frame, const PacketView& parsed,
                          TimePoint now) {
  if (vm_->state() != VmState::kRunning) {
    return;
  }
  const PacketView* view = &parsed;
  ++stats_.packets_handled;
  now_ = now;
  vm_->CountReceived();
  vm_->set_last_activity(now);
  TouchKernelPages();

  if (view->is_icmp()) {
    if (view->icmp().type == 8) {
      SendIcmpEchoReply(*view);
    }
    return;
  }
  if (view->is_tcp()) {
    if (config_.strict_tcp) {
      HandleTcpStrict(*view);
      return;
    }
    const ServiceConfig* service = FindService(IpProto::kTcp, view->tcp().dst_port);
    const uint8_t flags = view->tcp().flags;
    if ((flags & TcpFlags::kSyn) && !(flags & TcpFlags::kAck)) {
      if (service != nullptr) {
        SendTcpReply(*view, TcpFlags::kSyn | TcpFlags::kAck, {});
        // Permissive-mode personas greet right after the SYN|ACK (no strict
        // handshake completion to hook).
        if (service->persona != PersonaKind::kNone && persona_ != nullptr &&
            view->l4_payload().empty()) {
          PersonaReply greeting =
              persona_->OnConnect(*service, *view, now_.nanos());
          if (!greeting.payload.empty()) {
            SendTcpReply(*view, TcpFlags::kPsh | TcpFlags::kAck,
                         std::move(greeting.payload));
          }
        }
        // Data riding the SYN (the single-packet exploit model used by the worm
        // runtime; cf. WormRuntime::MakeScanPacket) is delivered to the service.
        if (!view->l4_payload().empty()) {
          ServeRequest(*service, *view);
        }
      } else {
        ++stats_.rst_sent;
        SendTcpReply(*view, TcpFlags::kRst | TcpFlags::kAck, {});
      }
      return;
    }
    if (flags & TcpFlags::kRst) {
      if (persona_ != nullptr) {
        persona_->OnClose(*view);
      }
      return;
    }
    // ACK-bearing traffic to a non-listening port is a reply to a connection a
    // local process initiated; hand it to the registered client (worm).
    if (service == nullptr && (flags & TcpFlags::kAck) && client_handler_) {
      client_handler_(*this, *view);
      return;
    }
    if (!view->l4_payload().empty() && service != nullptr) {
      ServeRequest(*service, *view);
    }
    if (persona_ != nullptr && (flags & TcpFlags::kFin)) {
      persona_->OnClose(*view);
    }
    return;
  }
  if (view->is_udp()) {
    const ServiceConfig* service = FindService(IpProto::kUdp, view->udp().dst_port);
    if (service != nullptr) {
      ServeRequest(*service, *view);
    } else if (view->udp().dst_port >= 1024) {
      // Ephemeral-range destination: treat as a reply to a client socket this
      // guest opened (DNS answers, etc.). A real stack would match the socket
      // table; the port-range heuristic keeps the model state-free.
      return;
    } else {
      // Closed UDP port: real stacks answer with ICMP port unreachable, quoting
      // the offending datagram (this backscatter is part of what telescopes see).
      PacketSpec unreachable;
      unreachable.src_mac = vm_->mac();
      unreachable.dst_mac = view->eth().src;
      unreachable.src_ip = view->ip().dst;
      unreachable.dst_ip = view->ip().src;
      unreachable.proto = IpProto::kIcmp;
      unreachable.icmp_type = kIcmpDestUnreachable;
      unreachable.icmp_code = kIcmpCodePortUnreachable;
      unreachable.payload = IcmpQuoteOf(frame);
      ++stats_.responses_sent;
      obs_.ledger.Append(LedgerEvent::kGuestResponse, view->session(),
                         now_.nanos(), view->udp().dst_port,
                         unreachable.payload.size());
      vm_->Transmit(BuildPacket(unreachable));
    }
    return;
  }
}

}  // namespace potemkin
