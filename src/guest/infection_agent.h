// Post-compromise behavior attached to the farm.
//
// An InfectionAgent is anything that takes over a guest once an exploit lands:
// a scanning worm, a multi-stage dropper, or a scripted escape/escalation
// behavior. The Honeyfarm keeps a list of attached agents; when a guest flips
// to infected it dispatches to the agent whose exploit vector matches the
// infecting packet (plus every agent that activates on any infection), and on
// VM retirement every agent gets a chance to cancel scheduled work.
#ifndef SRC_GUEST_INFECTION_AGENT_H_
#define SRC_GUEST_INFECTION_AGENT_H_

#include <cstdint>

#include "src/hv/vm.h"
#include "src/net/packet.h"

namespace potemkin {

class GuestOs;

class InfectionAgent {
 public:
  virtual ~InfectionAgent() = default;

  // Whether this agent's exploit arrives over (proto, port). Used to route an
  // infection to the strain that caused it when several agents are attached.
  virtual bool MatchesVector(IpProto proto, uint16_t port) const = 0;

  // Agents that piggyback on every infection regardless of vector (scripted
  // post-compromise behavior like escape attempts) return true; they are
  // activated in addition to the vector-matched agent.
  virtual bool ActivatesOnAnyInfection() const { return false; }

  // A guest was just infected by `exploit`. The agent may schedule virtual-time
  // work driving the guest's vNIC; `guest` outlives the VM's retirement event.
  virtual void OnGuestInfected(GuestOs& guest, const PacketView& exploit) = 0;

  // The VM was retired/destroyed: cancel any scheduled work for it.
  virtual void OnVmRetired(VmId vm) = 0;
};

}  // namespace potemkin

#endif  // SRC_GUEST_INFECTION_AGENT_H_
