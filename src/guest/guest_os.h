// The guest OS model: packet handling, service dispatch, working-set dirtying and
// the infection state machine.
//
// One GuestOs instance rides on each VirtualMachine. Inbound frames dirty kernel
// pages (network stack work), get demultiplexed to services, produce real response
// packets out of the vNIC, and — when an exploit payload matches a vulnerable
// service — flip the VM to infected and notify the registered observer (the worm
// runtime), which then drives outbound scanning through this same vNIC.
#ifndef SRC_GUEST_GUEST_OS_H_
#define SRC_GUEST_GUEST_OS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/rng.h"
#include "src/base/time_types.h"
#include "src/guest/service.h"
#include "src/guest/tcp_stack.h"
#include "src/hv/vm.h"
#include "src/net/packet.h"
#include "src/obs/observability.h"

namespace potemkin {

class PersonaEngine;

struct GuestOsConfig {
  std::vector<ServiceConfig> services;
  // Telemetry bundle; null falls back to Observability::Default(). Guest-level
  // ledger events (request/response/exploit) are keyed by the session the
  // delivering PacketView carries from the gateway.
  Observability* obs = nullptr;
  // Pages dirtied in the kernel on every received packet (skbuffs, softirq state).
  uint32_t kernel_pages_per_packet = 1;
  // First guest page of the heap region that request handling dirties.
  Gpfn heap_base_gpfn = 1024;
  // Heap pages wrap after this many so long-lived VMs' deltas plateau (the paper
  // observed per-VM deltas stabilizing, not growing unboundedly).
  uint32_t heap_pages = 2048;
  // Kernel pages live in a small region near the bottom of memory.
  Gpfn kernel_base_gpfn = 16;
  uint32_t kernel_pages = 64;
  // When true, TCP segments run through a real server-side state machine
  // (src/guest/tcp_stack.h): payload reaches services only on ESTABLISHED
  // connections and out-of-state segments draw RSTs. Default off: the permissive
  // model accepts payload-bearing segments directly, which is cheaper at farm
  // scale and matches the single-packet exploit studies.
  bool strict_tcp = false;
  Duration tcp_idle_timeout = Duration::Seconds(60);
};

struct GuestStats {
  uint64_t packets_handled = 0;
  uint64_t requests_served = 0;
  uint64_t responses_sent = 0;
  uint64_t rst_sent = 0;
  uint64_t exploits_received = 0;
  uint64_t oom_events = 0;  // guest writes failed: host out of frames
};

class GuestOs {
 public:
  // Invoked when an exploit successfully infects this guest.
  using InfectionObserver =
      std::function<void(GuestOs& guest, const PacketView& exploit)>;
  // Invoked for TCP packets addressed to a port with no listening service that
  // carry an ACK — i.e. replies to connections a process inside this guest
  // initiated (the worm runtime registers itself here to complete handshakes).
  using ClientPacketHandler =
      std::function<void(GuestOs& guest, const PacketView& reply)>;

  GuestOs(VirtualMachine* vm, const GuestOsConfig& config, Rng rng);
  ~GuestOs();

  VirtualMachine* vm() { return vm_; }
  const GuestStats& stats() const { return stats_; }
  bool infected() const { return vm_->infected(); }

  void set_infection_observer(InfectionObserver observer) {
    infection_observer_ = std::move(observer);
  }
  void set_client_packet_handler(ClientPacketHandler handler) {
    client_handler_ = std::move(handler);
  }

  // Processes an inbound frame delivered to this VM's vNIC at virtual time `now`.
  void HandleFrame(const Packet& frame, TimePoint now);
  // Parse-once variant: `view` must be a live parse of `frame` (the delivery
  // path already decoded the frame at gateway ingress; re-parsing here would
  // double the per-packet header work).
  void HandleFrame(const Packet& frame, const PacketView& view, TimePoint now);

  // The service listening on (proto, port), or nullptr.
  const ServiceConfig* FindService(IpProto proto, uint16_t port) const;

  // Strict-mode TCP state (meaningful only when config.strict_tcp).
  const GuestTcpStack& tcp_stack() const { return tcp_stack_; }
  // Non-null iff any configured service carries a persona.
  PersonaEngine* persona() { return persona_.get(); }

 private:
  void TouchKernelPages();
  void TouchHeapPages(uint32_t count);
  // `strict` carries the TCP stack's sequence numbers when the request arrived
  // through the strict state machine; null on the permissive path (replies then
  // use the simplified SendTcpReply sequencing).
  void ServeRequest(const ServiceConfig& service, const PacketView& view,
                    const SegmentDecision* strict = nullptr);
  // Persona dispatch for one delivered payload (called from ServeRequest).
  void ServePersona(const ServiceConfig& service, const PacketView& view,
                    const SegmentDecision* strict);
  void HandleTcpStrict(const PacketView& view);
  void SendTcpReply(const PacketView& request, uint8_t flags,
                    std::vector<uint8_t> payload);
  // Fully specified segment (strict mode uses the stack's sequence numbers).
  void SendTcpSegment(const PacketView& request, uint8_t flags, uint32_t seq,
                      uint32_t ack, std::vector<uint8_t> payload);
  void SendUdpReply(const PacketView& request, std::vector<uint8_t> payload);
  void SendIcmpEchoReply(const PacketView& request);

  VirtualMachine* vm_;
  GuestOsConfig config_;
  Observability& obs_;
  Rng rng_;
  GuestStats stats_;
  uint32_t heap_cursor_ = 0;
  uint32_t kernel_cursor_ = 0;
  InfectionObserver infection_observer_;
  ClientPacketHandler client_handler_;
  GuestTcpStack tcp_stack_;
  std::unique_ptr<PersonaEngine> persona_;  // created iff a service wants one
  uint32_t packets_since_expiry_ = 0;
  // Virtual time of the frame currently being handled; stamps ledger events
  // emitted from the send/serve helpers (which don't take `now` themselves).
  TimePoint now_;
};

}  // namespace potemkin

#endif  // SRC_GUEST_GUEST_OS_H_
