#include "src/guest/persona/escape.h"

#include <string>

#include "src/net/dns.h"

namespace potemkin {

namespace {

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

std::vector<EscapeStep> DefaultScript() {
  return {{EscapeKind::kC2Beacon, 1.0},
          {EscapeKind::kNonFarmScan, 1.5},
          {EscapeKind::kDnsExfil, 2.0}};
}

}  // namespace

const char* EscapeKindName(EscapeKind kind) {
  switch (kind) {
    case EscapeKind::kC2Beacon:
      return "c2-beacon";
    case EscapeKind::kNonFarmScan:
      return "non-farm-scan";
    case EscapeKind::kDnsExfil:
      return "dns-exfil";
  }
  return "?";
}

EscapeRuntime::EscapeRuntime(EventLoop* loop, const EscapeScriptConfig& config,
                             Observability* obs, uint64_t seed)
    : loop_(loop), config_(config), obs_(ObsOrDefault(obs)), rng_(seed) {
  if (config_.steps.empty()) {
    config_.steps = DefaultScript();
  }
  escalations_ = obs_.metrics.RegisterCounter("persona.escalations", "count");
  attempts_ = obs_.metrics.RegisterCounter("persona.escape_attempts", "count");
}

void EscapeRuntime::OnGuestInfected(GuestOs& guest, const PacketView& exploit) {
  const VmId vm = guest.vm()->id();
  if (instances_.count(vm) > 0) {
    return;  // reinfection does not restart the script
  }
  auto instance = std::make_unique<Instance>(rng_.Fork(vm));
  instance->guest = &guest;
  instance->session = exploit.session();
  instance->pending.push_back(loop_->ScheduleAfter(
      Duration::Seconds(config_.escalation_delay_s),
      [this, vm]() { FireEscalation(vm); }));
  for (const EscapeStep& step : config_.steps) {
    instance->pending.push_back(
        loop_->ScheduleAfter(Duration::Seconds(step.delay_s),
                             [this, vm, step]() { FireStep(vm, step); }));
  }
  instances_.emplace(vm, std::move(instance));
}

void EscapeRuntime::OnVmRetired(VmId vm) {
  auto it = instances_.find(vm);
  if (it == instances_.end()) {
    return;
  }
  for (EventHandle& handle : it->second->pending) {
    if (handle.IsValid()) {
      loop_->Cancel(handle);
    }
  }
  instances_.erase(it);
}

void EscapeRuntime::FireEscalation(VmId vm) {
  auto it = instances_.find(vm);
  if (it == instances_.end()) {
    return;
  }
  Instance& instance = *it->second;
  VirtualMachine* machine = instance.guest->vm();
  if (machine->state() != VmState::kRunning) {
    return;
  }
  ++stats_.escalations;
  escalations_.Inc();
  // Technique id is cosmetic forensic detail; draw it from the instance stream
  // so transcripts differ across VMs but replay identically per seed.
  const uint64_t technique = 1 + instance.rng.NextBelow(4);
  obs_.ledger.Append(LedgerEvent::kPersonaEscalation, instance.session,
                     loop_->Now().nanos(), machine->ip().value(), technique);
}

void EscapeRuntime::Emit(Instance& instance, Ipv4Address target,
                         EscapeKind kind) {
  ++stats_.attempts;
  ++stats_.attempts_by_kind[static_cast<size_t>(kind)];
  attempts_.Inc();
  // The attempt is on record BEFORE the packet enters the gateway: containment
  // catching it must not be a precondition for knowing it was tried.
  obs_.ledger.Append(LedgerEvent::kEscapeAttempt, instance.session,
                     loop_->Now().nanos(), target.value(),
                     static_cast<uint64_t>(kind));
}

void EscapeRuntime::FireStep(VmId vm, EscapeStep step) {
  auto it = instances_.find(vm);
  if (it == instances_.end()) {
    return;
  }
  Instance& instance = *it->second;
  VirtualMachine* machine = instance.guest->vm();
  if (machine->state() != VmState::kRunning) {
    return;
  }
  PacketSpec spec;
  spec.src_mac = machine->mac();
  spec.dst_mac = MacAddress::FromId(1);  // the gateway answers for everything
  spec.src_ip = machine->ip();

  switch (step.kind) {
    case EscapeKind::kC2Beacon: {
      spec.dst_ip = config_.c2_server;
      spec.proto = IpProto::kTcp;
      spec.src_port = static_cast<uint16_t>(49152 + instance.rng.NextBelow(8192));
      spec.dst_port = config_.c2_port;
      spec.tcp_flags = TcpFlags::kSyn | TcpFlags::kPsh;
      spec.payload =
          Bytes("C2-BEACON vm=" + std::to_string(machine->ip().value()));
      Emit(instance, config_.c2_server, step.kind);
      machine->Transmit(BuildPacket(spec));
      return;
    }
    case EscapeKind::kNonFarmScan: {
      for (uint32_t i = 0; i < config_.scan_probes; ++i) {
        const Ipv4Address target = config_.scan_range.AddressAt(
            instance.rng.NextBelow(config_.scan_range.NumAddresses()));
        PacketSpec probe = spec;
        probe.dst_ip = target;
        probe.proto = IpProto::kTcp;
        probe.src_port =
            static_cast<uint16_t>(49152 + instance.rng.NextBelow(8192));
        probe.dst_port = config_.scan_port;
        probe.tcp_flags = TcpFlags::kSyn;
        Emit(instance, target, step.kind);
        machine->Transmit(BuildPacket(probe));
      }
      return;
    }
    case EscapeKind::kDnsExfil: {
      spec.dst_ip = config_.exfil_dns;
      spec.proto = IpProto::kUdp;
      spec.src_port = static_cast<uint16_t>(49152 + instance.rng.NextBelow(8192));
      spec.dst_port = 53;
      // Classic DNS tunneling: the stolen bytes ride the query name, so the
      // packet is a well-formed lookup the gateway's proxy will answer — the
      // malware sees a working resolver while the data never leaves the farm.
      DnsQuery query;
      query.id = static_cast<uint16_t>(instance.rng.NextBelow(0x10000));
      query.name = "x" + std::to_string(machine->ip().value()) +
                   ".c2vjcmv0cw.exfil.test";
      spec.payload = EncodeDnsQuery(query);
      Emit(instance, config_.exfil_dns, step.kind);
      machine->Transmit(BuildPacket(spec));
      return;
    }
  }
}

}  // namespace potemkin
