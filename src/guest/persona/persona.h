// Stateful service personas: multi-step protocol emulators behind guest ports.
//
// The paper gets fidelity from running real OS images; the reproduction's guests
// answered with one-shot banners, which a probing attacker can distinguish from
// a real service in two packets. A persona upgrades a ServiceConfig to a
// per-session state machine — SSH walks version exchange -> KEXINIT -> auth
// attempts -> failure lockout, SMB walks negotiate -> session-setup ->
// tree-connect, HTTP serves decoy documents — so interaction transcripts are
// plausible several exchanges deep. All responses are deterministic: each
// session forks its RNG from the engine seed by flow key, so the same seed
// replays byte-identical transcripts (the persona-smoke CI job relies on this).
//
// The engine is protocol logic only: it never builds packets. GuestOs calls
// OnConnect/OnData/OnClose from its strict-TCP dispatch (or the permissive path)
// and transmits whatever payload the returned PersonaReply carries, using the
// TCP stack's sequence numbers. Session progress is recorded as persona.*
// metrics and kPersona* ledger events keyed by the delivering packet's session,
// so forensics shows how deep each attacker got into the facade.
#ifndef SRC_GUEST_PERSONA_PERSONA_H_
#define SRC_GUEST_PERSONA_PERSONA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/guest/service.h"
#include "src/net/packet.h"
#include "src/obs/observability.h"

namespace potemkin {

// What the guest should send back for one persona step.
struct PersonaReply {
  std::vector<uint8_t> payload;  // empty = say nothing
  bool close = false;            // server-side close after sending (lockout)
  // Additional guest pages the step dirties beyond the service's base cost
  // (large decoy documents touch buffers proportional to their size).
  uint32_t extra_pages = 0;
};

struct PersonaStats {
  uint64_t sessions_opened = 0;
  uint64_t auth_failures = 0;
  uint64_t lockouts = 0;
  uint64_t decoys_served = 0;
  uint64_t bad_sequence = 0;  // protocol step out of order
  uint64_t sessions_evicted = 0;
};

class PersonaEngine {
 public:
  // Auth failures tolerated before an SSH persona locks the peer out.
  static constexpr uint32_t kSshMaxAuthFailures = 3;

  explicit PersonaEngine(Rng rng, Observability* obs = nullptr,
                         size_t max_sessions = 256);

  // The server-side accept() completed: banner-first protocols (SSH) return
  // their greeting here; client-speaks-first protocols (SMB, HTTP) return
  // nothing and just open session state.
  PersonaReply OnConnect(const ServiceConfig& service, const PacketView& view,
                         int64_t now_ns);
  // One delivered payload segment on an established connection.
  PersonaReply OnData(const ServiceConfig& service, const PacketView& view,
                      int64_t now_ns);
  // Peer tore the connection down (FIN or RST): drop session state.
  void OnClose(const PacketView& view);

  size_t session_count() const { return sessions_.size(); }
  const PersonaStats& stats() const { return stats_; }

 private:
  struct SessionKey {
    uint32_t peer_ip = 0;
    uint16_t peer_port = 0;
    uint16_t local_port = 0;
    bool operator==(const SessionKey&) const = default;
  };
  struct KeyHash {
    size_t operator()(const SessionKey& key) const noexcept {
      uint64_t h = key.peer_ip;
      h = h * 0x9e3779b97f4a7c15ull +
          ((static_cast<uint64_t>(key.peer_port) << 16) | key.local_port);
      h ^= h >> 32;
      return static_cast<size_t>(h);
    }
  };
  struct Session {
    PersonaKind kind = PersonaKind::kNone;
    uint32_t state = 0;
    uint32_t auth_failures = 0;
    Rng rng;  // forked from the engine seed by flow key: order-independent
    Session() : rng(0) {}
  };

  Session& OpenSession(const SessionKey& key, PersonaKind kind);
  void EmitState(const PacketView& view, PersonaKind kind, uint32_t state,
                 int64_t now_ns);

  PersonaReply SshConnect(Session& session, const PacketView& view,
                          int64_t now_ns);
  PersonaReply SshData(Session& session, const PacketView& view, int64_t now_ns);
  PersonaReply SmbData(Session& session, const PacketView& view, int64_t now_ns);
  PersonaReply HttpData(Session& session, const PacketView& view,
                        int64_t now_ns);

  Rng rng_;  // never advanced: the base all session streams fork from
  Observability& obs_;
  size_t max_sessions_;
  std::unordered_map<SessionKey, Session, KeyHash> sessions_;
  PersonaStats stats_;
  Counter sessions_opened_;
  Counter auth_failures_;
  Counter lockouts_;
  Counter decoys_served_;
  Counter bad_sequence_;
};

}  // namespace potemkin

#endif  // SRC_GUEST_PERSONA_PERSONA_H_
