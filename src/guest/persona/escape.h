// Scripted post-compromise behavior: privilege escalation + escape attempts.
//
// Worm propagation only exercises containment with more of the same traffic.
// Real intrusions try to *leave*: beacon to a command-and-control host, scan
// addresses outside the farm, exfiltrate over DNS. EscapeRuntime is an
// InfectionAgent that rides every infection and plays that script in virtual
// time through the compromised guest's vNIC — so every attempt crosses the
// gateway's containment filter like any other packet. Each attempt is recorded
// as a kEscapeAttempt ledger event (before the packet is sent) under the
// infecting session, which lets the forensics timeline pair the attempt with
// the containment verdict that caught it; the persona_farm example asserts
// exactly that pairing.
#ifndef SRC_GUEST_PERSONA_ESCAPE_H_
#define SRC_GUEST_PERSONA_ESCAPE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/event_loop.h"
#include "src/base/rng.h"
#include "src/guest/guest_os.h"
#include "src/guest/infection_agent.h"
#include "src/net/ipv4.h"
#include "src/obs/observability.h"

namespace potemkin {

enum class EscapeKind : uint8_t {
  kC2Beacon = 0,     // TCP beacon to a command-and-control server
  kNonFarmScan = 1,  // SYN probes of addresses outside the farm prefix
  kDnsExfil = 2,     // UDP/53 exfiltration datagram
};

const char* EscapeKindName(EscapeKind kind);

struct EscapeStep {
  EscapeKind kind = EscapeKind::kC2Beacon;
  double delay_s = 1.0;  // after infection
};

struct EscapeScriptConfig {
  // All targets are TEST-NET / documentation addresses: definitionally outside
  // any farm prefix, so a correctly configured containment policy must verdict
  // every one of these packets.
  Ipv4Address c2_server = Ipv4Address(203, 0, 113, 37);
  uint16_t c2_port = 6667;
  Ipv4Address exfil_dns = Ipv4Address(198, 51, 100, 53);
  Ipv4Prefix scan_range = Ipv4Prefix(Ipv4Address(192, 0, 2, 0), 24);
  uint32_t scan_probes = 4;  // probes per kNonFarmScan step
  uint16_t scan_port = 445;
  // Simulated local privilege escalation precedes the first escape attempt
  // (kPersonaEscalation in the ledger; nothing leaves the guest).
  double escalation_delay_s = 0.5;
  // Empty = the default script: beacon at 1s, scan at 1.5s, exfil at 2s.
  std::vector<EscapeStep> steps;
};

struct EscapeStats {
  uint64_t escalations = 0;
  uint64_t attempts = 0;          // escape packets handed to the vNIC
  uint64_t attempts_by_kind[3] = {0, 0, 0};
};

class EscapeRuntime : public InfectionAgent {
 public:
  EscapeRuntime(EventLoop* loop, const EscapeScriptConfig& config,
                Observability* obs, uint64_t seed);

  // ---- InfectionAgent ----
  bool MatchesVector(IpProto, uint16_t) const override { return false; }
  bool ActivatesOnAnyInfection() const override { return true; }
  void OnGuestInfected(GuestOs& guest, const PacketView& exploit) override;
  void OnVmRetired(VmId vm) override;

  size_t active_instances() const { return instances_.size(); }
  const EscapeStats& stats() const { return stats_; }

 private:
  struct Instance {
    GuestOs* guest = nullptr;
    SessionId session = kNoSession;  // the infecting session: ties attempts to
                                     // the containment verdicts that catch them
    Rng rng;
    std::vector<EventHandle> pending;
    explicit Instance(Rng r) : rng(r) {}
  };

  void FireEscalation(VmId vm);
  void FireStep(VmId vm, EscapeStep step);
  void Emit(Instance& instance, Ipv4Address target, EscapeKind kind);

  EventLoop* loop_;
  EscapeScriptConfig config_;
  Observability& obs_;
  Rng rng_;
  std::unordered_map<VmId, std::unique_ptr<Instance>> instances_;
  EscapeStats stats_;
  Counter escalations_;
  Counter attempts_;
};

}  // namespace potemkin

#endif  // SRC_GUEST_PERSONA_ESCAPE_H_
