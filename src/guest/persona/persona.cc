#include "src/guest/persona/persona.h"

#include <algorithm>
#include <span>
#include <string>

namespace potemkin {

namespace {

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

bool Contains(std::span<const uint8_t> payload, const char* marker) {
  const std::string m(marker);
  return std::search(payload.begin(), payload.end(), m.begin(), m.end()) !=
         payload.end();
}

std::string HexU64(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

// Extracts the request path of a "GET <path> ..." line, or "" if not a GET.
std::string HttpPath(std::span<const uint8_t> payload) {
  const std::string text(payload.begin(), payload.end());
  if (text.rfind("GET ", 0) != 0) {
    return "";
  }
  const size_t start = 4;
  size_t end = start;
  while (end < text.size() && text[end] != ' ' && text[end] != '\r' &&
         text[end] != '\n') {
    ++end;
  }
  return text.substr(start, end - start);
}

// Decoy documents the HTTP persona exposes. Ids > 0 mark sensitive bait whose
// retrieval is a forensic signal (kPersonaDecoy); id 0 is routine content.
struct DecoyDoc {
  const char* path;
  uint64_t id;
  const char* body;
};

const DecoyDoc kDecoys[] = {
    {"/", 0,
     "<html><body><h1>intranet</h1>"
     "<a href=\"/finance/payroll-2005.xls\">payroll</a> "
     "<a href=\"/hr/employees.csv\">directory</a></body></html>\n"},
    {"/robots.txt", 0, "User-agent: *\nDisallow: /finance/\nDisallow: /hr/\n"},
    {"/finance/payroll-2005.xls", 1,
     "XLS\x01payroll FY2005: jdoe 48200, asmith 51700, rlee 46900\n"},
    {"/hr/employees.csv", 2,
     "name,ext,office\njdoe,4411,bldg-2\nasmith,4412,bldg-2\nrlee,4413,"
     "bldg-1\n"},
};

SessionId ViewSession(const PacketView& view) { return view.session(); }

}  // namespace

PersonaEngine::PersonaEngine(Rng rng, Observability* obs, size_t max_sessions)
    : rng_(rng), obs_(ObsOrDefault(obs)), max_sessions_(max_sessions) {
  sessions_opened_ = obs_.metrics.RegisterCounter("persona.sessions_opened", "count");
  auth_failures_ = obs_.metrics.RegisterCounter("persona.auth_failures", "count");
  lockouts_ = obs_.metrics.RegisterCounter("persona.lockouts", "count");
  decoys_served_ = obs_.metrics.RegisterCounter("persona.decoys_served", "count");
  bad_sequence_ = obs_.metrics.RegisterCounter("persona.bad_sequence", "count");
}

PersonaEngine::Session& PersonaEngine::OpenSession(const SessionKey& key,
                                                   PersonaKind kind) {
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    return it->second;
  }
  if (sessions_.size() >= max_sessions_) {
    sessions_.erase(sessions_.begin());
    ++stats_.sessions_evicted;
  }
  Session session;
  session.kind = kind;
  // Fork by flow key, not from a stream that advances: the transcript a given
  // attacker sees must not depend on which other sessions ran first.
  session.rng = rng_.Fork(KeyHash{}(key));
  ++stats_.sessions_opened;
  sessions_opened_.Inc();
  return sessions_.emplace(key, std::move(session)).first->second;
}

void PersonaEngine::EmitState(const PacketView& view, PersonaKind kind,
                              uint32_t state, int64_t now_ns) {
  obs_.ledger.Append(LedgerEvent::kPersonaState, ViewSession(view), now_ns,
                     (static_cast<uint64_t>(kind) << 8) | state,
                     view.tcp().dst_port);
}

PersonaReply PersonaEngine::OnConnect(const ServiceConfig& service,
                                      const PacketView& view, int64_t now_ns) {
  const SessionKey key{view.ip().src.value(), view.tcp().src_port,
                       view.tcp().dst_port};
  Session& session = OpenSession(key, service.persona);
  if (service.persona == PersonaKind::kSsh) {
    return SshConnect(session, view, now_ns);
  }
  // SMB and HTTP are client-speaks-first: just open state.
  EmitState(view, service.persona, session.state, now_ns);
  return {};
}

PersonaReply PersonaEngine::OnData(const ServiceConfig& service,
                                   const PacketView& view, int64_t now_ns) {
  const SessionKey key{view.ip().src.value(), view.tcp().src_port,
                       view.tcp().dst_port};
  Session& session = OpenSession(key, service.persona);
  switch (service.persona) {
    case PersonaKind::kSsh:
      return SshData(session, view, now_ns);
    case PersonaKind::kSmb:
      return SmbData(session, view, now_ns);
    case PersonaKind::kHttp:
      return HttpData(session, view, now_ns);
    case PersonaKind::kNone:
      break;
  }
  return {};
}

void PersonaEngine::OnClose(const PacketView& view) {
  const SessionKey key{view.ip().src.value(), view.tcp().src_port,
                       view.tcp().dst_port};
  sessions_.erase(key);
}

// ---- SSH: version exchange -> KEXINIT -> auth attempts -> lockout ----------
//
// States: 0 connected, 1 greeting sent, 2 KEXINIT exchanged (auth phase).

PersonaReply PersonaEngine::SshConnect(Session& session, const PacketView& view,
                                       int64_t now_ns) {
  session.state = 1;
  EmitState(view, PersonaKind::kSsh, session.state, now_ns);
  PersonaReply reply;
  reply.payload = Bytes("SSH-2.0-OpenSSH_3.9p1\r\n");
  return reply;
}

PersonaReply PersonaEngine::SshData(Session& session, const PacketView& view,
                                    int64_t now_ns) {
  PersonaReply reply;
  if (session.state <= 1) {
    // Client's version string: answer with our key exchange. The cookie comes
    // from the session stream, so it is stable per (seed, flow) but varies
    // across peers like a real server's would.
    session.state = 2;
    EmitState(view, PersonaKind::kSsh, session.state, now_ns);
    reply.payload = Bytes("SSH-KEXINIT cookie=" + HexU64(session.rng.NextU64()) +
                          " kex=diffie-hellman-group1-sha1\r\n");
    return reply;
  }
  // Auth phase: every payload is an authentication attempt that fails.
  ++session.auth_failures;
  ++stats_.auth_failures;
  auth_failures_.Inc();
  obs_.ledger.Append(LedgerEvent::kPersonaAuthFailure, ViewSession(view), now_ns,
                     session.auth_failures, view.tcp().dst_port);
  if (session.auth_failures >= kSshMaxAuthFailures) {
    ++stats_.lockouts;
    lockouts_.Inc();
    obs_.ledger.Append(LedgerEvent::kPersonaLockout, ViewSession(view), now_ns,
                       view.ip().src.value(), view.tcp().dst_port);
    reply.payload = Bytes("SSH-LOCKOUT too many authentication failures\r\n");
    reply.close = true;
    OnClose(view);
    return reply;
  }
  reply.payload = Bytes("SSH-AUTH-FAILURE method=password attempt=" +
                        std::to_string(session.auth_failures) + "\r\n");
  return reply;
}

// ---- SMB: negotiate -> session setup -> tree connect ------------------------
//
// States: 0 connected, 1 negotiated, 2 session set up, 3 tree connected.
// Steps out of order draw an error and leave the state unchanged, like a real
// server rejecting a request for a nonexistent uid/tid.

PersonaReply PersonaEngine::SmbData(Session& session, const PacketView& view,
                                    int64_t now_ns) {
  const auto payload = view.l4_payload();
  PersonaReply reply;
  if (session.state == 0 && Contains(payload, "SMB-NEGOTIATE")) {
    session.state = 1;
    EmitState(view, PersonaKind::kSmb, session.state, now_ns);
    reply.payload = Bytes("SMB-NEGOTIATE-RESPONSE dialect=NT LM 0.12\r\n");
    return reply;
  }
  if (session.state == 1 && Contains(payload, "SMB-SESSION-SETUP")) {
    session.state = 2;
    EmitState(view, PersonaKind::kSmb, session.state, now_ns);
    reply.payload =
        Bytes("SMB-SESSION-SETUP-RESPONSE uid=" +
              std::to_string(session.rng.NextBelow(0x10000)) + " guest=0\r\n");
    return reply;
  }
  if (session.state == 2 && Contains(payload, "SMB-TREE-CONNECT")) {
    session.state = 3;
    EmitState(view, PersonaKind::kSmb, session.state, now_ns);
    reply.payload =
        Bytes("SMB-TREE-CONNECT-RESPONSE tid=" +
              std::to_string(session.rng.NextBelow(0x10000)) + " share=IPC$\r\n");
    return reply;
  }
  ++stats_.bad_sequence;
  bad_sequence_.Inc();
  reply.payload = Bytes("SMB-ERROR bad-sequence\r\n");
  return reply;
}

// ---- HTTP: decoy document server -------------------------------------------

PersonaReply PersonaEngine::HttpData(Session& session, const PacketView& view,
                                     int64_t now_ns) {
  PersonaReply reply;
  const std::string path = HttpPath(view.l4_payload());
  const DecoyDoc* doc = nullptr;
  for (const DecoyDoc& candidate : kDecoys) {
    if (path == candidate.path) {
      doc = &candidate;
      break;
    }
  }
  if (doc == nullptr) {
    ++stats_.bad_sequence;
    bad_sequence_.Inc();
    reply.payload = Bytes("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
    return reply;
  }
  const std::string body(doc->body);
  session.state = 1;
  reply.payload = Bytes("HTTP/1.1 200 OK\r\nServer: Apache/2.0.52\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) + "\r\n\r\n" + body);
  reply.extra_pages = static_cast<uint32_t>(body.size() / 1024);
  if (doc->id > 0) {
    ++stats_.decoys_served;
    decoys_served_.Inc();
    obs_.ledger.Append(LedgerEvent::kPersonaDecoy, ViewSession(view), now_ns,
                       doc->id, body.size());
  }
  return reply;
}

}  // namespace potemkin
