// Minimal per-guest TCP server-side state machine.
//
// The default guest model answers payload-bearing segments permissively (good
// enough for single-packet exploit studies and cheap at farm scale). For
// fidelity-sensitive experiments, `GuestOsConfig::strict_tcp` routes all TCP
// segments through this stack instead: services then behave like a real
// accept()ing server — payload is delivered only on ESTABLISHED connections, SYNs
// get exact sequence numbers, out-of-state segments draw RSTs, and connection
// state occupies (and therefore bounds) guest resources.
//
// States follow the server-side subset of RFC 793:
//   LISTEN -> SYN_RCVD -> ESTABLISHED -> (FIN) CLOSE_WAIT -> CLOSED
// with RST tearing down any state.
#ifndef SRC_GUEST_TCP_STACK_H_
#define SRC_GUEST_TCP_STACK_H_

#include <cstdint>
#include <unordered_map>

#include "src/base/rng.h"
#include "src/base/time_types.h"
#include "src/net/packet.h"

namespace potemkin {

enum class TcpServerState {
  kSynReceived,
  kEstablished,
  kCloseWait,
};

// What the guest should do with an incoming segment.
enum class SegmentAction {
  kReplySynAck,        // accept the connection (reply with decision seq/ack)
  kReplyRst,           // refuse / out of state
  kEstablished,        // handshake completed with no data: the server's accept()
                       // fires here (banner-first personas send their greeting)
  kDeliverPayload,     // connection established: hand payload to the service
  kReplyFinAck,        // peer closed; acknowledge
  kDeliverPayloadAndClose,  // data rode the FIN: deliver it, then FIN|ACK
  kIgnore,             // duplicate/benign segment, no action
};

struct SegmentDecision {
  SegmentAction action = SegmentAction::kIgnore;
  uint32_t reply_seq = 0;
  uint32_t reply_ack = 0;
  // RFC 793 RST form (only meaningful for kReplyRst): a reset answering a
  // segment that carried an ACK takes its seq from that ACK and sets no ACK
  // flag of its own; a reset answering a no-ACK segment uses seq=0 and must
  // acknowledge every octet of the offending segment (ACK flag set).
  bool rst_has_ack = true;
};

struct TcpStackStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_established = 0;
  uint64_t connections_closed = 0;
  uint64_t payload_segments_delivered = 0;
  uint64_t out_of_state_segments = 0;
  uint64_t resets_sent = 0;
  uint64_t evictions = 0;
};

class GuestTcpStack {
 public:
  explicit GuestTcpStack(Rng rng, size_t max_connections = 4096);

  // Processes one inbound segment addressed to a local port. `has_listener`
  // states whether a service listens on the destination port.
  SegmentDecision OnSegment(const PacketView& view, bool has_listener,
                            TimePoint now);

  size_t connection_count() const { return connections_.size(); }
  const TcpStackStats& stats() const { return stats_; }

  // Reclaims connections idle past `timeout`. Returns how many were dropped.
  size_t ExpireIdle(TimePoint now, Duration timeout);

 private:
  struct ConnectionKey {
    uint32_t peer_ip = 0;
    uint16_t peer_port = 0;
    uint16_t local_port = 0;
    bool operator==(const ConnectionKey&) const = default;
  };
  struct KeyHash {
    size_t operator()(const ConnectionKey& key) const noexcept {
      uint64_t h = key.peer_ip;
      h = h * 0x9e3779b97f4a7c15ull + ((static_cast<uint64_t>(key.peer_port) << 16) |
                                       key.local_port);
      h ^= h >> 32;
      return static_cast<size_t>(h);
    }
  };
  struct Connection {
    TcpServerState state = TcpServerState::kSynReceived;
    uint32_t local_seq = 0;   // next sequence number we would send
    uint32_t peer_next = 0;   // next sequence number expected from the peer
    TimePoint last_activity;
  };

  void EvictOldest();

  Rng rng_;
  size_t max_connections_;
  std::unordered_map<ConnectionKey, Connection, KeyHash> connections_;
  TcpStackStats stats_;
};

}  // namespace potemkin

#endif  // SRC_GUEST_TCP_STACK_H_
