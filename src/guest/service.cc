#include "src/guest/service.h"

#include <algorithm>

namespace potemkin {

bool ExploitSignature::Matches(IpProto p, uint16_t dst_port,
                               std::span<const uint8_t> payload) const {
  if (p != proto || dst_port != port || pattern.empty() ||
      payload.size() < pattern.size()) {
    return false;
  }
  return std::search(payload.begin(), payload.end(), pattern.begin(), pattern.end()) !=
         payload.end();
}

namespace {

std::vector<uint8_t> Bytes(const char* text) {
  std::vector<uint8_t> out;
  for (const char* p = text; *p != 0; ++p) {
    out.push_back(static_cast<uint8_t>(*p));
  }
  return out;
}

}  // namespace

std::vector<ServiceConfig> DefaultWindowsServices() {
  std::vector<ServiceConfig> services;
  {
    ServiceConfig smb;
    smb.name = "smb";
    smb.proto = IpProto::kTcp;
    smb.port = 445;
    smb.banner = Bytes("SMB");
    smb.pages_touched_per_request = 6;
    smb.vulnerability = ExploitSignature{IpProto::kTcp, 445, Bytes("EXPLOIT-LSASS")};
    services.push_back(std::move(smb));
  }
  {
    ServiceConfig rpc;
    rpc.name = "msrpc";
    rpc.proto = IpProto::kTcp;
    rpc.port = 135;
    rpc.banner = Bytes("RPC");
    rpc.pages_touched_per_request = 5;
    rpc.vulnerability = ExploitSignature{IpProto::kTcp, 135, Bytes("EXPLOIT-DCOM")};
    services.push_back(std::move(rpc));
  }
  {
    ServiceConfig mssql;
    mssql.name = "mssql-udp";
    mssql.proto = IpProto::kUdp;
    mssql.port = 1434;
    mssql.banner = Bytes("SQL");
    mssql.pages_touched_per_request = 3;
    mssql.vulnerability = ExploitSignature{IpProto::kUdp, 1434, Bytes("EXPLOIT-SLAMMER")};
    services.push_back(std::move(mssql));
  }
  {
    ServiceConfig web;
    web.name = "iis";
    web.proto = IpProto::kTcp;
    web.port = 80;
    web.banner = Bytes("HTTP/1.1 200 OK\r\nServer: IIS\r\n\r\n");
    web.pages_touched_per_request = 4;
    services.push_back(std::move(web));
  }
  return services;
}

std::vector<ServiceConfig> DefaultLinuxServices() {
  std::vector<ServiceConfig> services;
  {
    ServiceConfig ssh;
    ssh.name = "ssh";
    ssh.proto = IpProto::kTcp;
    ssh.port = 22;
    ssh.banner = Bytes("SSH-2.0-OpenSSH_3.9\r\n");
    ssh.pages_touched_per_request = 4;
    services.push_back(std::move(ssh));
  }
  {
    ServiceConfig web;
    web.name = "apache";
    web.proto = IpProto::kTcp;
    web.port = 80;
    web.banner = Bytes("HTTP/1.1 200 OK\r\nServer: Apache/2.0\r\n\r\n");
    web.pages_touched_per_request = 4;
    web.vulnerability = ExploitSignature{IpProto::kTcp, 80, Bytes("EXPLOIT-CGI")};
    services.push_back(std::move(web));
  }
  {
    ServiceConfig smtp;
    smtp.name = "smtp";
    smtp.proto = IpProto::kTcp;
    smtp.port = 25;
    smtp.banner = Bytes("220 mail ESMTP\r\n");
    smtp.pages_touched_per_request = 3;
    services.push_back(std::move(smtp));
  }
  return services;
}

std::vector<ServiceConfig> PersonaHoneypotServices() {
  std::vector<ServiceConfig> services;
  {
    ServiceConfig ssh;
    ssh.name = "ssh";
    ssh.proto = IpProto::kTcp;
    ssh.port = 22;
    ssh.pages_touched_per_request = 4;
    ssh.persona = PersonaKind::kSsh;
    services.push_back(std::move(ssh));
  }
  {
    ServiceConfig web;
    web.name = "httpd";
    web.proto = IpProto::kTcp;
    web.port = 80;
    web.pages_touched_per_request = 4;
    web.vulnerability = ExploitSignature{IpProto::kTcp, 80, Bytes("EXPLOIT-CGI")};
    web.persona = PersonaKind::kHttp;
    services.push_back(std::move(web));
  }
  {
    ServiceConfig smb;
    smb.name = "smb";
    smb.proto = IpProto::kTcp;
    smb.port = 445;
    smb.pages_touched_per_request = 6;
    smb.vulnerability = ExploitSignature{IpProto::kTcp, 445, Bytes("EXPLOIT-LSASS")};
    smb.persona = PersonaKind::kSmb;
    services.push_back(std::move(smb));
  }
  return services;
}

}  // namespace potemkin
