#include "src/guest/tcp_stack.h"

namespace potemkin {

namespace {

// RFC 793 SEG.LEN: the number of sequence-space octets a segment occupies —
// its payload bytes plus one octet each for SYN and FIN.
uint32_t SegmentLength(const PacketView& view) {
  uint32_t len = static_cast<uint32_t>(view.l4_payload().size());
  if (view.tcp().flags & TcpFlags::kSyn) {
    ++len;
  }
  if (view.tcp().flags & TcpFlags::kFin) {
    ++len;
  }
  return len;
}

}  // namespace

GuestTcpStack::GuestTcpStack(Rng rng, size_t max_connections)
    : rng_(rng), max_connections_(max_connections) {}

void GuestTcpStack::EvictOldest() {
  auto oldest = connections_.begin();
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->second.last_activity < oldest->second.last_activity) {
      oldest = it;
    }
  }
  if (oldest != connections_.end()) {
    connections_.erase(oldest);
    ++stats_.evictions;
  }
}

SegmentDecision GuestTcpStack::OnSegment(const PacketView& view, bool has_listener,
                                         TimePoint now) {
  SegmentDecision decision;
  if (!view.is_tcp()) {
    return decision;
  }
  const uint8_t flags = view.tcp().flags;
  const ConnectionKey key{view.ip().src.value(), view.tcp().src_port,
                          view.tcp().dst_port};
  auto it = connections_.find(key);

  if (flags & TcpFlags::kRst) {
    if (it != connections_.end()) {
      connections_.erase(it);
      ++stats_.connections_closed;
    }
    return decision;  // RSTs are never answered
  }

  // New connection attempt.
  if ((flags & TcpFlags::kSyn) && !(flags & TcpFlags::kAck)) {
    if (!has_listener) {
      // The SYN carries no ACK, so the RST takes the no-ACK form: seq=0 and
      // an ack covering the whole segment (SYN octet plus any data riding it).
      ++stats_.resets_sent;
      decision.action = SegmentAction::kReplyRst;
      decision.reply_seq = 0;
      decision.reply_ack = view.tcp().seq + SegmentLength(view);
      decision.rst_has_ack = true;
      return decision;
    }
    if (it == connections_.end() && connections_.size() >= max_connections_) {
      EvictOldest();
    }
    Connection connection;
    connection.state = TcpServerState::kSynReceived;
    connection.local_seq = static_cast<uint32_t>(rng_.NextU64());
    connection.peer_next = view.tcp().seq + 1;
    connection.last_activity = now;
    ++stats_.connections_accepted;
    decision.action = SegmentAction::kReplySynAck;
    decision.reply_seq = connection.local_seq;
    decision.reply_ack = connection.peer_next;
    connection.local_seq += 1;  // our SYN consumes one sequence number
    connections_[key] = connection;  // retransmitted SYN resets the attempt
    return decision;
  }

  // Anything else without state draws a RST (no listener or never connected).
  // RFC 793: a segment that carried an ACK is reset with seq=SEG.ACK and no
  // ACK flag; a segment without one gets seq=0 and ack=SEG.SEQ+SEG.LEN (the
  // SYN/FIN control octets each count one) so the peer can match the reset.
  if (it == connections_.end()) {
    ++stats_.out_of_state_segments;
    ++stats_.resets_sent;
    decision.action = SegmentAction::kReplyRst;
    if (flags & TcpFlags::kAck) {
      decision.reply_seq = view.tcp().ack;
      decision.reply_ack = 0;
      decision.rst_has_ack = false;
    } else {
      decision.reply_seq = 0;
      decision.reply_ack = view.tcp().seq + SegmentLength(view);
      decision.rst_has_ack = true;
    }
    return decision;
  }

  Connection& connection = it->second;
  connection.last_activity = now;

  switch (connection.state) {
    case TcpServerState::kSynReceived:
      if (flags & TcpFlags::kAck) {
        connection.state = TcpServerState::kEstablished;
        ++stats_.connections_established;
        // Data can ride the final handshake ACK.
        if (!view.l4_payload().empty()) {
          connection.peer_next =
              view.tcp().seq + static_cast<uint32_t>(view.l4_payload().size());
          ++stats_.payload_segments_delivered;
          decision.action = SegmentAction::kDeliverPayload;
          decision.reply_seq = connection.local_seq;
          decision.reply_ack = connection.peer_next;
          return decision;
        }
        // Bare handshake ACK: the server-side accept() completes here.
        decision.action = SegmentAction::kEstablished;
        decision.reply_seq = connection.local_seq;
        decision.reply_ack = connection.peer_next;
        return decision;
      }
      return decision;  // kIgnore

    case TcpServerState::kEstablished:
      if (flags & TcpFlags::kFin) {
        // The FIN octet consumes one sequence number *after* any payload that
        // rides the segment, and that payload must still reach the service.
        const uint32_t payload_len =
            static_cast<uint32_t>(view.l4_payload().size());
        connection.state = TcpServerState::kCloseWait;
        connection.peer_next = view.tcp().seq + payload_len + 1;
        ++stats_.connections_closed;
        if (payload_len > 0) {
          ++stats_.payload_segments_delivered;
          decision.action = SegmentAction::kDeliverPayloadAndClose;
        } else {
          decision.action = SegmentAction::kReplyFinAck;
        }
        decision.reply_seq = connection.local_seq;
        decision.reply_ack = connection.peer_next;
        connections_.erase(it);  // model both FIN directions at once
        return decision;
      }
      if (!view.l4_payload().empty()) {
        connection.peer_next =
            view.tcp().seq + static_cast<uint32_t>(view.l4_payload().size());
        ++stats_.payload_segments_delivered;
        decision.action = SegmentAction::kDeliverPayload;
        decision.reply_seq = connection.local_seq;
        decision.reply_ack = connection.peer_next;
        return decision;
      }
      return decision;  // bare ACK keepalive

    case TcpServerState::kCloseWait:
      return decision;
  }
  return decision;
}

size_t GuestTcpStack::ExpireIdle(TimePoint now, Duration timeout) {
  size_t removed = 0;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (now - it->second.last_activity > timeout) {
      it = connections_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace potemkin
