// Network services running inside a guest, including exploitable ones.
//
// Fidelity in the paper comes from running real OS images; our guest model keeps
// the parts the experiments depend on: services answer on real ports with real
// handshakes and banners, touch (dirty) a configurable number of pages per request
// — which is what drives each clone's memory delta — and can carry a vulnerability
// that a matching exploit payload triggers, flipping the VM to infected.
#ifndef SRC_GUEST_SERVICE_H_
#define SRC_GUEST_SERVICE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace potemkin {

// An exploit is recognized by substring match of `pattern` in the payload carried
// to `port`/`proto` (how real IDS signatures for Slammer/Blaster-class worms work).
struct ExploitSignature {
  IpProto proto = IpProto::kTcp;
  uint16_t port = 0;
  std::vector<uint8_t> pattern;

  bool Matches(IpProto p, uint16_t dst_port, std::span<const uint8_t> payload) const;
};

// Stateful persona behind a service (src/guest/persona): instead of a one-shot
// banner, the service runs a multi-step protocol state machine per session.
enum class PersonaKind : uint8_t {
  kNone = 0,  // plain banner service
  kSsh,       // version exchange -> KEXINIT -> auth attempts -> lockout
  kSmb,       // negotiate -> session setup -> tree connect
  kHttp,      // request/response with decoy documents
};

struct ServiceConfig {
  std::string name = "svc";
  IpProto proto = IpProto::kTcp;
  uint16_t port = 0;
  // Bytes sent back when a request (TCP payload after handshake, or UDP datagram)
  // arrives. Empty = silent service.
  std::vector<uint8_t> banner;
  // Guest pages dirtied when handling one request (connection state, buffers,
  // logs). This is the knob behind the delta-virtualization experiments.
  uint32_t pages_touched_per_request = 4;
  std::optional<ExploitSignature> vulnerability;
  // Non-kNone routes this service's traffic through the guest's PersonaEngine
  // (requires strict_tcp for TCP session state; the banner field is unused).
  PersonaKind persona = PersonaKind::kNone;
};

// Canned service sets mirroring what mid-2000s honeypots exposed.
std::vector<ServiceConfig> DefaultWindowsServices();
std::vector<ServiceConfig> DefaultLinuxServices();
// Persona-backed honeypot profile: stateful SSH (22), HTTP with decoy
// documents (80, EXPLOIT-CGI vulnerable) and SMB (445, EXPLOIT-LSASS
// vulnerable). Pair with GuestOsConfig::strict_tcp = true.
std::vector<ServiceConfig> PersonaHoneypotServices();

}  // namespace potemkin

#endif  // SRC_GUEST_SERVICE_H_
