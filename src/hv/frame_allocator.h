// Machine-frame allocator with reference counting.
//
// This is the substrate for delta virtualization: a frame mapped copy-on-write into
// many VMs has a refcount equal to the number of mappings, and the host's *used
// frame count* — the quantity delta virtualization minimizes — is exactly the number
// of live frames here. Frame contents can be stored for real (tests, fidelity
// checks) or tracked as metadata only (large-scale benchmarks), selected per host;
// all byte access goes through this class so callers are oblivious to the mode.
//
// Two allocation surfaces coexist:
//   * the per-frame calls (`AllocateZeroed`, `CloneFrame`) — one frame per call,
//     individual heap buffers, the path every pre-batching caller uses;
//   * the batch calls (`AllocateBatch`, `CloneFrameBatch`, `UnrefBatch`) — one
//     capacity check and one round of accounting for a whole run of frames, with
//     page buffers recycled through an internal pool so a batched CoW storm never
//     touches the heap in steady state. Batch allocation is all-or-nothing: a
//     batch that does not fit is *denied* as a unit (typed status + the
//     `hv.frames.denied` counter) instead of silently degrading partway.
#ifndef SRC_HV_FRAME_ALLOCATOR_H_
#define SRC_HV_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/hv/types.h"
#include "src/obs/metric_registry.h"

namespace potemkin {

class DedupIndex;

enum class ContentMode {
  kStoreBytes,    // frames carry real 4 KiB buffers; reads/writes touch real memory
  kMetadataOnly,  // frames are accounting entries only (for very large farms)
};

// Typed allocation outcome. kDenied means the host's frame budget could not
// cover the request; the allocator has already counted the denial (see
// `denied_requests()` / the `hv.frames.denied` metric) and no partial state
// remains.
enum class FrameAllocStatus : uint8_t {
  kOk = 0,
  kDenied,
};

class FrameAllocator {
 public:
  // `capacity_frames` models the host's physical memory size.
  FrameAllocator(uint64_t capacity_frames, ContentMode mode);
  ~FrameAllocator();

  // Registers cold-path probes (used/peak/capacity frames, CoW copy count,
  // denied allocations) under `prefix` (e.g. "host0.mem"), plus the farm-wide
  // `hv.frames.denied` counter (shared storage across allocators on the same
  // registry, so multi-host farms aggregate). Keyed by this allocator; the
  // destructor removes them, so handing out the registry pointer is safe for
  // any allocator lifetime.
  void ExportMetrics(MetricRegistry* registry, const std::string& prefix);

  ContentMode mode() const { return mode_; }

  // Allocates a zero-filled frame with refcount 1. Returns kInvalidFrame when the
  // host is out of memory (admission control surfaces this to the clone engine);
  // the denial is counted.
  FrameId AllocateZeroed();

  // Allocates a new frame whose contents are copied from `src` (the copy-on-write
  // break path). Returns kInvalidFrame when out of memory.
  FrameId CloneFrame(FrameId src);

  // ---- Batch surface ----

  // Allocates `count` zero-filled frames (refcount 1 each) into `out` with one
  // capacity check and one round of accounting. All-or-nothing: on kDenied no
  // frame was allocated and `out` is untouched.
  FrameAllocStatus AllocateBatch(uint32_t count, FrameId* out);

  // Allocates `count` frames, the i-th a content copy of `src[i]`, with one
  // capacity check, pooled destination buffers, and one round of accounting.
  // Source frames may repeat (a run of pages CoW-mapped to the same canonical
  // frame is the common case). All-or-nothing on kDenied.
  FrameAllocStatus CloneFrameBatch(std::span<const FrameId> src, FrameId* out);

  void Ref(FrameId frame);
  // Takes `count` additional references in one accounting step (a freshly
  // cloned address space references every image frame once; callers mapping a
  // run against one frame fold the whole run into a single add).
  void RefN(FrameId frame, uint32_t count);
  // Drops a reference; frees the frame when the count reaches zero.
  void Unref(FrameId frame);
  // Drops one reference on every frame of `frames`; freed frames return their
  // page buffers to the pool instead of the heap.
  void UnrefBatch(std::span<const FrameId> frames);
  uint32_t RefCount(FrameId frame) const;

  // Byte access. In kMetadataOnly mode writes are accounted but discarded and reads
  // produce zeros.
  void Write(FrameId frame, size_t offset, std::span<const uint8_t> bytes);
  void Read(FrameId frame, size_t offset, std::span<uint8_t> out) const;

  // Zero-copy view of a live frame's page for the deduplicator. Never null in
  // kStoreBytes mode: an unmaterialized (all-zero) frame yields a shared
  // canonical zero page. Returns nullptr in kMetadataOnly mode.
  const uint8_t* PeekData(FrameId frame) const;

  // Attaches the host's dedup index; it is notified on frame writes and frees
  // so stale content hashes never survive. Pass nullptr to detach.
  void set_dedup_index(DedupIndex* index) { dedup_index_ = index; }
  DedupIndex* dedup_index() const { return dedup_index_; }

  uint64_t capacity_frames() const { return capacity_frames_; }
  uint64_t used_frames() const { return used_frames_; }
  uint64_t free_frames() const { return capacity_frames_ - used_frames_; }
  uint64_t peak_used_frames() const { return peak_used_frames_; }
  uint64_t total_allocations() const { return total_allocations_; }
  uint64_t total_copies() const { return total_copies_; }
  uint64_t used_bytes() const { return used_frames_ * kPageSize; }
  // Allocation requests (single frames or whole batches) refused at the frame
  // budget. A nonzero value under admission-controlled workloads means the
  // pressure recycler is not keeping up.
  uint64_t denied_requests() const { return denied_requests_; }
  size_t pooled_buffers() const { return buffer_pool_.size(); }

  // True if at least `frames` more frames can be allocated.
  bool CanAllocate(uint64_t frames) const { return free_frames() >= frames; }

 private:
  struct Frame {
    uint32_t refcount = 0;
    std::unique_ptr<uint8_t[]> data;  // null until first write in kStoreBytes mode
  };

  // Page buffers recycled between batch CoW breaks. Bounded so a burst of
  // frees cannot hold more than kBufferPoolCap pages of heap.
  static constexpr size_t kBufferPoolCap = 512;

  uint8_t* MaterializeData(Frame& frame);
  // Takes a frame slot off the free list (or grows the table) and readies it
  // with refcount 1. Capacity must already be checked by the caller.
  FrameId TakeSlot();
  void CountDenied();
  void ReleaseData(Frame& frame);

  MetricRegistry* export_registry_ = nullptr;
  DedupIndex* dedup_index_ = nullptr;
  ContentMode mode_;
  uint64_t capacity_frames_;
  uint64_t used_frames_ = 0;
  uint64_t peak_used_frames_ = 0;
  uint64_t total_allocations_ = 0;
  uint64_t total_copies_ = 0;
  uint64_t denied_requests_ = 0;
  Counter denied_counter_;  // "hv.frames.denied" once ExportMetrics ran
  // "hv.fault.batch_pages" once ExportMetrics ran: pages per successful batch
  // fault/clone — how well FaultRange amortizes the per-batch overhead.
  LatencyHistogram batch_pages_hist_;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_list_;
  std::vector<std::unique_ptr<uint8_t[]>> buffer_pool_;
};

}  // namespace potemkin

#endif  // SRC_HV_FRAME_ALLOCATOR_H_
