// Machine-frame allocator with reference counting.
//
// This is the substrate for delta virtualization: a frame mapped copy-on-write into
// many VMs has a refcount equal to the number of mappings, and the host's *used
// frame count* — the quantity delta virtualization minimizes — is exactly the number
// of live frames here. Frame contents can be stored for real (tests, fidelity
// checks) or tracked as metadata only (large-scale benchmarks), selected per host;
// all byte access goes through this class so callers are oblivious to the mode.
#ifndef SRC_HV_FRAME_ALLOCATOR_H_
#define SRC_HV_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/hv/types.h"
#include "src/obs/metric_registry.h"

namespace potemkin {

class DedupIndex;

enum class ContentMode {
  kStoreBytes,    // frames carry real 4 KiB buffers; reads/writes touch real memory
  kMetadataOnly,  // frames are accounting entries only (for very large farms)
};

class FrameAllocator {
 public:
  // `capacity_frames` models the host's physical memory size.
  FrameAllocator(uint64_t capacity_frames, ContentMode mode);
  ~FrameAllocator();

  // Registers cold-path probes (used/peak/capacity frames, CoW copy count)
  // under `prefix` (e.g. "host0.mem"). Keyed by this allocator; the destructor
  // removes them, so handing out the registry pointer is safe for any
  // allocator lifetime.
  void ExportMetrics(MetricRegistry* registry, const std::string& prefix);

  ContentMode mode() const { return mode_; }

  // Allocates a zero-filled frame with refcount 1. Returns kInvalidFrame when the
  // host is out of memory (admission control surfaces this to the clone engine).
  FrameId AllocateZeroed();

  // Allocates a new frame whose contents are copied from `src` (the copy-on-write
  // break path). Returns kInvalidFrame when out of memory.
  FrameId CloneFrame(FrameId src);

  void Ref(FrameId frame);
  // Drops a reference; frees the frame when the count reaches zero.
  void Unref(FrameId frame);
  uint32_t RefCount(FrameId frame) const;

  // Byte access. In kMetadataOnly mode writes are accounted but discarded and reads
  // produce zeros.
  void Write(FrameId frame, size_t offset, std::span<const uint8_t> bytes);
  void Read(FrameId frame, size_t offset, std::span<uint8_t> out) const;

  // Zero-copy view of a live frame's page for the deduplicator. Never null in
  // kStoreBytes mode: an unmaterialized (all-zero) frame yields a shared
  // canonical zero page. Returns nullptr in kMetadataOnly mode.
  const uint8_t* PeekData(FrameId frame) const;

  // Attaches the host's dedup index; it is notified on frame writes and frees
  // so stale content hashes never survive. Pass nullptr to detach.
  void set_dedup_index(DedupIndex* index) { dedup_index_ = index; }
  DedupIndex* dedup_index() const { return dedup_index_; }

  uint64_t capacity_frames() const { return capacity_frames_; }
  uint64_t used_frames() const { return used_frames_; }
  uint64_t free_frames() const { return capacity_frames_ - used_frames_; }
  uint64_t peak_used_frames() const { return peak_used_frames_; }
  uint64_t total_allocations() const { return total_allocations_; }
  uint64_t total_copies() const { return total_copies_; }
  uint64_t used_bytes() const { return used_frames_ * kPageSize; }

  // True if at least `frames` more frames can be allocated.
  bool CanAllocate(uint64_t frames) const { return free_frames() >= frames; }

 private:
  struct Frame {
    uint32_t refcount = 0;
    std::unique_ptr<uint8_t[]> data;  // null until first write in kStoreBytes mode
  };

  uint8_t* MaterializeData(Frame& frame);

  MetricRegistry* export_registry_ = nullptr;
  DedupIndex* dedup_index_ = nullptr;
  ContentMode mode_;
  uint64_t capacity_frames_;
  uint64_t used_frames_ = 0;
  uint64_t peak_used_frames_ = 0;
  uint64_t total_allocations_ = 0;
  uint64_t total_copies_ = 0;
  std::vector<Frame> frames_;
  std::vector<FrameId> free_list_;
};

}  // namespace potemkin

#endif  // SRC_HV_FRAME_ALLOCATOR_H_
