#include "src/hv/working_set.h"

#include <algorithm>

namespace potemkin {

void WorkingSetProfile::RecordSession(std::span<const Gpfn> touch_order) {
  // Decay the accumulated history first so this session is the freshest
  // signal, dropping entries that have faded to noise.
  if (config_.decay < 1.0) {
    for (auto it = scores_.begin(); it != scores_.end();) {
      it->second *= config_.decay;
      if (it->second < 1e-3) {
        it = scores_.erase(it);
      } else {
        ++it;
      }
    }
  }
  const uint32_t n =
      std::min<uint32_t>(config_.max_pages, static_cast<uint32_t>(touch_order.size()));
  for (uint32_t i = 0; i < n; ++i) {
    // Positional weight: the first touch is worth max_pages, the last worth 1.
    scores_[touch_order[i]] += static_cast<double>(config_.max_pages - i);
  }
  ++sessions_;
}

std::vector<Gpfn> WorkingSetProfile::PredictFirst(uint32_t n) const {
  std::vector<Gpfn> out;
  if (sessions_ < config_.min_sessions || n == 0) {
    return out;
  }
  std::vector<std::pair<Gpfn, double>> ranked(scores_.begin(), scores_.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;  // deterministic tie-break
  });
  const size_t limit = std::min<size_t>(std::min<uint32_t>(n, config_.max_pages),
                                        ranked.size());
  out.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    out.push_back(ranked[i].first);
  }
  return out;
}

}  // namespace potemkin
