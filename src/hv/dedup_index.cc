#include "src/hv/dedup_index.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

void DedupIndex::Insert(FrameId frame, uint64_t hash, AddressSpace* owner,
                        Gpfn owner_gpfn) {
  if (frame >= meta_.size()) {
    meta_.resize(frame + 1);
  }
  PK_CHECK(!meta_[frame].indexed) << "frame indexed twice";
  meta_[frame] = FrameMeta{hash, owner, owner_gpfn, true};
  buckets_[hash].push_back(frame);
  ++indexed_count_;
}

void DedupIndex::MarkShared(FrameId frame) {
  PK_CHECK(Contains(frame)) << "MarkShared of unindexed frame";
  meta_[frame].owner_as = nullptr;
  meta_[frame].owner_gpfn = 0;
}

void DedupIndex::Drop(FrameId frame) {
  FrameMeta& meta = meta_[frame];
  auto it = buckets_.find(meta.hash);
  if (it != buckets_.end()) {
    std::erase(it->second, frame);
    if (it->second.empty()) {
      buckets_.erase(it);
    }
  }
  meta = FrameMeta{};
  --indexed_count_;
}

void DedupIndex::Clear() {
  buckets_.clear();
  meta_.assign(meta_.size(), FrameMeta{});
  indexed_count_ = 0;
}

}  // namespace potemkin
