// VM snapshots for forensic archiving.
//
// The farm's whole purpose is to *capture* malware; when an infected VM is
// recycled its state must not be lost. A snapshot records everything unique to
// the VM — exactly its delta against the reference image: the private memory
// pages, the disk overlay blocks, and identification metadata. Snapshots
// serialize to a compact "PKSN1" file and can be restored into a fresh flash
// clone of the same image, reproducing the infected machine for offline analysis.
#ifndef SRC_HV_SNAPSHOT_H_
#define SRC_HV_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/base/time_types.h"
#include "src/hv/vm.h"

namespace potemkin {

struct VmSnapshotMeta {
  VmId vm = kInvalidVm;
  std::string name;
  uint32_t ip = 0;  // bound address (host order)
  int64_t taken_at_ns = 0;
  uint32_t num_pages = 0;  // guest address-space size
  bool infected = false;
};

class VmSnapshot {
 public:
  // Captures the VM's delta state. Page contents are read through the allocator,
  // so in kMetadataOnly mode the *set* of dirty pages is preserved but their
  // contents are zeros (documented limitation of accounting-only hosts).
  static VmSnapshot Capture(const VirtualMachine& vm, TimePoint now);

  const VmSnapshotMeta& meta() const { return meta_; }
  size_t delta_pages() const { return pages_.size(); }
  size_t disk_blocks() const { return blocks_.size(); }
  uint64_t SerializedSizeBytes() const;

  // Restores the delta into `vm`, which must be a clone of the same reference
  // image (same address-space size). Returns false on shape mismatch or OOM.
  bool RestoreInto(VirtualMachine* vm) const;

  // The captured content of one guest page, if it was in the delta.
  const std::vector<uint8_t>* PageContent(Gpfn gpfn) const;

  bool WriteToFile(const std::string& path) const;
  static std::optional<VmSnapshot> ReadFromFile(const std::string& path);

 private:
  VmSnapshotMeta meta_;
  std::map<Gpfn, std::vector<uint8_t>> pages_;
  std::map<uint64_t, std::vector<uint8_t>> blocks_;
};

}  // namespace potemkin

#endif  // SRC_HV_SNAPSHOT_H_
