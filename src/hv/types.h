// Common identifier types for the simulated hypervisor substrate.
#ifndef SRC_HV_TYPES_H_
#define SRC_HV_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace potemkin {

// Machine page size. Matches x86 4 KiB pages, as in the paper's Xen substrate.
inline constexpr size_t kPageSize = 4096;

// Index of a machine frame within a host's frame allocator.
using FrameId = uint32_t;
inline constexpr FrameId kInvalidFrame = static_cast<FrameId>(-1);

// Guest pseudo-physical frame number.
using Gpfn = uint32_t;

// Globally unique VM (domain) identifier.
using VmId = uint64_t;
inline constexpr VmId kInvalidVm = 0;

// Identifier of a physical host in the farm.
using HostId = uint32_t;

// Identifier of a reference image registered on a host.
using ImageId = uint32_t;

}  // namespace potemkin

#endif  // SRC_HV_TYPES_H_
