#include "src/hv/page_dedup.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "src/hv/address_space.h"

namespace potemkin {

namespace {

uint64_t HashPage(const uint8_t* data) {
  // FNV-1a over 64-bit lanes; fast and adequate since equality is re-verified.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < kPageSize; i += 8) {
    uint64_t lane;
    std::memcpy(&lane, data + i, 8);
    h = (h ^ lane) * 1099511628211ull;
  }
  return h;
}

struct PrivatePageRef {
  VirtualMachine* vm = nullptr;
  Gpfn gpfn = 0;
  FrameId frame = kInvalidFrame;
};

}  // namespace

DedupResult DeduplicatePages(PhysicalHost& host) {
  DedupResult result;
  FrameAllocator& allocator = host.allocator();
  if (allocator.mode() != ContentMode::kStoreBytes) {
    return result;  // nothing to compare on accounting-only hosts
  }

  // Pass 1: collect and hash every private page.
  std::unordered_map<uint64_t, std::vector<PrivatePageRef>> by_hash;
  std::vector<uint8_t> buffer(kPageSize);
  host.ForEachVm([&](VirtualMachine& vm) {
    vm.memory().ForEachPrivatePage([&](Gpfn gpfn, FrameId frame) {
      allocator.Read(frame, 0, std::span(buffer.data(), buffer.size()));
      by_hash[HashPage(buffer.data())].push_back(PrivatePageRef{&vm, gpfn, frame});
      ++result.pages_scanned;
    });
  });

  // Pass 2: within each hash bucket, merge byte-identical pages onto the first
  // (canonical) frame.
  std::vector<uint8_t> canonical_bytes(kPageSize);
  std::vector<uint8_t> candidate_bytes(kPageSize);
  for (auto& [hash, refs] : by_hash) {
    if (refs.size() < 2) {
      continue;
    }
    // The canonical frame must survive its owner's conversion to CoW, so pin it.
    const PrivatePageRef canonical = refs[0];
    allocator.Read(canonical.frame, 0,
                   std::span(canonical_bytes.data(), canonical_bytes.size()));
    bool canonical_converted = false;
    allocator.Ref(canonical.frame);
    for (size_t i = 1; i < refs.size(); ++i) {
      const PrivatePageRef& candidate = refs[i];
      allocator.Read(candidate.frame, 0,
                     std::span(candidate_bytes.data(), candidate_bytes.size()));
      if (candidate_bytes != canonical_bytes) {
        ++result.hash_collisions;
        continue;
      }
      if (!canonical_converted) {
        // Flip the canonical owner's mapping to read-only CoW first, so its
        // future writes cannot mutate pages now shared with others.
        canonical.vm->memory().ConvertPrivateToSharedCow(canonical.gpfn,
                                                         canonical.frame);
        canonical_converted = true;
      }
      candidate.vm->memory().ConvertPrivateToSharedCow(candidate.gpfn,
                                                       canonical.frame);
      ++result.pages_merged;
      ++result.frames_freed;
    }
    allocator.Unref(canonical.frame);
  }
  result.bytes_saved = result.frames_freed * kPageSize;
  return result;
}

}  // namespace potemkin
