#include "src/hv/page_dedup.h"

#include <cstring>

#include "src/hv/address_space.h"
#include "src/hv/dedup_index.h"

namespace potemkin {

namespace {

uint64_t HashPage(const uint8_t* data) {
  // FNV-1a over 64-bit lanes; fast and adequate since equality is re-verified.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < kPageSize; i += 8) {
    uint64_t lane;
    std::memcpy(&lane, data + i, 8);
    h = (h ^ lane) * 1099511628211ull;
  }
  return h;
}

}  // namespace

DedupResult DeduplicatePages(PhysicalHost& host, DedupMode mode) {
  DedupResult result;
  FrameAllocator& allocator = host.allocator();
  if (allocator.mode() != ContentMode::kStoreBytes) {
    return result;  // nothing to compare on accounting-only hosts
  }
  DedupIndex& index = host.dedup_index();
  if (mode == DedupMode::kFullScan) {
    // Forget everything and reexamine the whole host: the ground-truth path the
    // incremental mode is cross-checked against.
    index.Clear();
    host.ForEachVm([](VirtualMachine& vm) { vm.memory().MarkAllPrivateDirty(); });
  }

  host.ForEachVm([&](VirtualMachine& vm) {
    AddressSpace& memory = vm.memory();
    memory.DrainDirtyPages([&](Gpfn gpfn, FrameId frame) {
      if (index.Contains(frame)) {
        return;  // still indexed => content unchanged since it was examined
      }
      ++result.pages_scanned;
      const uint8_t* data = allocator.PeekData(frame);
      const uint64_t hash = HashPage(data);

      // Find a byte-identical previously-seen frame (hash bucket may collide).
      DedupIndex::Candidate canonical;
      index.ForEachCandidate(hash, [&](const DedupIndex::Candidate& candidate) {
        if (canonical.frame != kInvalidFrame || candidate.frame == frame) {
          return;
        }
        if (std::memcmp(allocator.PeekData(candidate.frame), data, kPageSize) != 0) {
          ++result.hash_collisions;
          return;
        }
        canonical = candidate;
      });

      if (canonical.frame == kInvalidFrame) {
        index.Insert(frame, hash, &memory, gpfn);
        return;
      }
      // Pin the canonical frame across its owner's conversion to CoW.
      allocator.Ref(canonical.frame);
      if (canonical.owner_as != nullptr) {
        // Flip the canonical owner's mapping to read-only CoW first, so its
        // future writes cannot mutate pages now shared with others.
        canonical.owner_as->ConvertPrivateToSharedCow(canonical.owner_gpfn,
                                                      canonical.frame);
        index.MarkShared(canonical.frame);
      }
      memory.ConvertPrivateToSharedCow(gpfn, canonical.frame);  // frees `frame`
      allocator.Unref(canonical.frame);
      ++result.pages_merged;
      ++result.frames_freed;
    });
  });
  result.bytes_saved = result.frames_freed * kPageSize;
  host.AccumulateDedup(result.pages_scanned, result.pages_merged,
                       result.frames_freed);
  return result;
}

}  // namespace potemkin
