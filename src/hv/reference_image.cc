#include "src/hv/reference_image.h"

#include "src/base/log.h"
#include "src/base/rng.h"

namespace potemkin {

namespace {

// Deterministically decides whether a page is a zero page and, if not, generates
// its contents from (seed, gpfn).
bool IsZeroPage(const ReferenceImageConfig& config, Gpfn gpfn) {
  Rng rng(config.content_seed ^ (static_cast<uint64_t>(gpfn) * 0x9e3779b97f4a7c15ull));
  return rng.NextDouble() < config.zero_page_fraction;
}

}  // namespace

std::vector<uint8_t> ReferenceImage::ExpectedPageContent(
    const ReferenceImageConfig& config, Gpfn gpfn) {
  std::vector<uint8_t> page(kPageSize, 0);
  if (IsZeroPage(config, gpfn)) {
    return page;
  }
  Rng rng(config.content_seed * 0xd1342543de82ef95ull + gpfn);
  // Code-like pages (repetitive) vs data-like pages (high entropy), half and half.
  if (gpfn % 2 == 0) {
    const uint8_t pattern = static_cast<uint8_t>(rng.NextU64());
    for (size_t i = 0; i < kPageSize; ++i) {
      page[i] = static_cast<uint8_t>(pattern + (i % 64));
    }
  } else {
    for (size_t i = 0; i < kPageSize; i += 8) {
      const uint64_t word = rng.NextU64();
      for (size_t j = 0; j < 8 && i + j < kPageSize; ++j) {
        page[i + j] = static_cast<uint8_t>(word >> (8 * j));
      }
    }
  }
  return page;
}

ReferenceImage::ReferenceImage(FrameAllocator* allocator,
                               const ReferenceImageConfig& config)
    : allocator_(allocator), config_(config) {
  Generation boot;
  boot.frames.reserve(config_.num_pages);
  for (Gpfn gpfn = 0; gpfn < config_.num_pages; ++gpfn) {
    const FrameId frame = allocator_->AllocateZeroed();
    if (frame == kInvalidFrame) {
      PK_ERROR << "host out of memory while booting reference image " << config_.name
               << " at page " << gpfn << "/" << config_.num_pages;
      for (FrameId f : boot.frames) {
        allocator_->Unref(f);
      }
      return;
    }
    if (allocator_->mode() == ContentMode::kStoreBytes && !IsZeroPage(config_, gpfn)) {
      const auto content = ExpectedPageContent(config_, gpfn);
      allocator_->Write(frame, 0, std::span(content.data(), content.size()));
    }
    boot.frames.push_back(frame);
  }
  generations_.push_back(std::move(boot));
  ok_ = true;
}

ReferenceImage::~ReferenceImage() {
  for (Generation& gen : generations_) {
    for (FrameId frame : gen.frames) {
      allocator_->Unref(frame);
    }
    gen.frames.clear();
  }
}

const ReferenceImage::Generation& ReferenceImage::LiveGeneration(
    ImageGeneration gen) const {
  PK_CHECK(gen < generations_.size()) << "unknown image generation";
  PK_CHECK(!generations_[gen].retired) << "access to retired image generation";
  return generations_[gen];
}

FrameId ReferenceImage::FrameForPage(Gpfn gpfn) const {
  return FrameForPage(current_generation(), gpfn);
}

FrameId ReferenceImage::FrameForPage(ImageGeneration generation, Gpfn gpfn) const {
  const Generation& gen = LiveGeneration(generation);
  PK_CHECK(gpfn < gen.frames.size()) << "image page out of range";
  return gen.frames[gpfn];
}

std::span<const FrameId> ReferenceImage::GenerationFrames(
    ImageGeneration generation) const {
  const Generation& gen = LiveGeneration(generation);
  return std::span<const FrameId>(gen.frames.data(), gen.frames.size());
}

size_t ReferenceImage::live_generations() const {
  size_t live = 0;
  for (const Generation& gen : generations_) {
    live += gen.retired ? 0 : 1;
  }
  return live;
}

bool ReferenceImage::Refresh(std::span<const ImagePatch> patches) {
  const ImageGeneration parent_id = current_generation();
  const Generation& parent = generations_[parent_id];
  std::vector<bool> patched(config_.num_pages, false);
  for (const ImagePatch& patch : patches) {
    PK_CHECK(patch.gpfn < config_.num_pages) << "patch outside image";
    PK_CHECK(patch.bytes.size() <= kPageSize) << "patch larger than a page";
    PK_CHECK(!patched[patch.gpfn]) << "duplicate patch for page " << patch.gpfn;
    patched[patch.gpfn] = true;
  }
  // Allocate the replacement frames first so a denied refresh leaves the
  // image untouched.
  std::vector<FrameId> fresh(patches.size());
  if (!patches.empty() &&
      allocator_->AllocateBatch(static_cast<uint32_t>(patches.size()),
                                fresh.data()) != FrameAllocStatus::kOk) {
    PK_ERROR << "image " << config_.name << " refresh denied: host cannot back "
             << patches.size() << " patched pages";
    return false;
  }
  Generation next;
  next.frames = parent.frames;
  for (size_t i = 0; i < patches.size(); ++i) {
    if (allocator_->mode() == ContentMode::kStoreBytes && !patches[i].bytes.empty()) {
      allocator_->Write(fresh[i], 0,
                        std::span(patches[i].bytes.data(), patches[i].bytes.size()));
    }
    next.frames[patches[i].gpfn] = fresh[i];
  }
  // The new generation takes its own reference on every inherited frame.
  for (Gpfn gpfn = 0; gpfn < next.frames.size(); ++gpfn) {
    if (next.frames[gpfn] == parent.frames[gpfn]) {
      allocator_->Ref(next.frames[gpfn]);
    }
  }
  generations_.push_back(std::move(next));
  // The parent is no longer the newest; if no clone pinned it, its frames go
  // now (unpatched ones survive through the new generation's references).
  MaybeRetire(parent_id);
  return true;
}

void ReferenceImage::PinGeneration(ImageGeneration generation) {
  PK_CHECK(generation < generations_.size()) << "pin of unknown generation";
  PK_CHECK(!generations_[generation].retired) << "pin of retired generation";
  ++generations_[generation].pin_count;
}

void ReferenceImage::UnpinGeneration(ImageGeneration generation) {
  PK_CHECK(generation < generations_.size()) << "unpin of unknown generation";
  Generation& gen = generations_[generation];
  PK_CHECK(gen.pin_count > 0) << "unpin without pin";
  --gen.pin_count;
  MaybeRetire(generation);
}

uint32_t ReferenceImage::pins(ImageGeneration generation) const {
  PK_CHECK(generation < generations_.size()) << "pins of unknown generation";
  return generations_[generation].pin_count;
}

void ReferenceImage::MaybeRetire(ImageGeneration gen_id) {
  Generation& gen = generations_[gen_id];
  if (gen.retired || gen.pin_count > 0 || gen_id == current_generation()) {
    return;
  }
  for (FrameId frame : gen.frames) {
    allocator_->Unref(frame);
  }
  gen.frames.clear();
  gen.frames.shrink_to_fit();
  gen.retired = true;
}

WorkingSetProfile& ReferenceImage::ProfileForClass(uint32_t attack_class) {
  auto it = profiles_.find(attack_class);
  if (it == profiles_.end()) {
    it = profiles_.emplace(attack_class, WorkingSetProfile(config_.working_set))
             .first;
  }
  return it->second;
}

const WorkingSetProfile* ReferenceImage::FindProfile(uint32_t attack_class) const {
  auto it = profiles_.find(attack_class);
  return it == profiles_.end() ? nullptr : &it->second;
}

}  // namespace potemkin
