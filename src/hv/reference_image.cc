#include "src/hv/reference_image.h"

#include "src/base/log.h"
#include "src/base/rng.h"

namespace potemkin {

namespace {

// Deterministically decides whether a page is a zero page and, if not, generates
// its contents from (seed, gpfn).
bool IsZeroPage(const ReferenceImageConfig& config, Gpfn gpfn) {
  Rng rng(config.content_seed ^ (static_cast<uint64_t>(gpfn) * 0x9e3779b97f4a7c15ull));
  return rng.NextDouble() < config.zero_page_fraction;
}

}  // namespace

std::vector<uint8_t> ReferenceImage::ExpectedPageContent(
    const ReferenceImageConfig& config, Gpfn gpfn) {
  std::vector<uint8_t> page(kPageSize, 0);
  if (IsZeroPage(config, gpfn)) {
    return page;
  }
  Rng rng(config.content_seed * 0xd1342543de82ef95ull + gpfn);
  // Code-like pages (repetitive) vs data-like pages (high entropy), half and half.
  if (gpfn % 2 == 0) {
    const uint8_t pattern = static_cast<uint8_t>(rng.NextU64());
    for (size_t i = 0; i < kPageSize; ++i) {
      page[i] = static_cast<uint8_t>(pattern + (i % 64));
    }
  } else {
    for (size_t i = 0; i < kPageSize; i += 8) {
      const uint64_t word = rng.NextU64();
      for (size_t j = 0; j < 8 && i + j < kPageSize; ++j) {
        page[i + j] = static_cast<uint8_t>(word >> (8 * j));
      }
    }
  }
  return page;
}

ReferenceImage::ReferenceImage(FrameAllocator* allocator,
                               const ReferenceImageConfig& config)
    : allocator_(allocator), config_(config) {
  frames_.reserve(config_.num_pages);
  for (Gpfn gpfn = 0; gpfn < config_.num_pages; ++gpfn) {
    const FrameId frame = allocator_->AllocateZeroed();
    if (frame == kInvalidFrame) {
      PK_ERROR << "host out of memory while booting reference image " << config_.name
               << " at page " << gpfn << "/" << config_.num_pages;
      for (FrameId f : frames_) {
        allocator_->Unref(f);
      }
      frames_.clear();
      return;
    }
    if (allocator_->mode() == ContentMode::kStoreBytes && !IsZeroPage(config_, gpfn)) {
      const auto content = ExpectedPageContent(config_, gpfn);
      allocator_->Write(frame, 0, std::span(content.data(), content.size()));
    }
    frames_.push_back(frame);
  }
  ok_ = true;
}

ReferenceImage::~ReferenceImage() {
  for (FrameId frame : frames_) {
    allocator_->Unref(frame);
  }
}

FrameId ReferenceImage::FrameForPage(Gpfn gpfn) const {
  PK_CHECK(gpfn < frames_.size()) << "image page out of range";
  return frames_[gpfn];
}

}  // namespace potemkin
