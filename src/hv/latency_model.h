// Calibrated control-plane latency constants for VM lifecycle operations.
//
// The paper's flash-cloning breakdown (its clone-latency table) showed a total of
// roughly half a second per clone on the unoptimized Xen 3 prototype, dominated by
// control-plane work (the Python `xend` toolstack, device plumbing and network
// configuration) rather than by memory copying — copying is exactly what delta
// virtualization eliminates. We reproduce that *shape* with the constants below:
// each phase charge is virtual time added by the clone engine, and the per-page
// costs model page-table/grant-table setup that scales with image size.
//
// The alternative `Optimized()` model reflects the paper's projection that a
// C-implemented control plane could cut cloning to tens of milliseconds.
#ifndef SRC_HV_LATENCY_MODEL_H_
#define SRC_HV_LATENCY_MODEL_H_

#include "src/base/time_types.h"

namespace potemkin {

// Phases of a flash clone, in execution order. Kept as an enum so the breakdown
// table (experiment T1) can iterate them.
enum class ClonePhase : int {
  kControlPlaneRpc = 0,   // gateway -> clone daemon request handling
  kDomainCreate,          // hypervisor domain descriptor + vcpu construction
  kMemoryMapSetup,        // CoW-mapping every image page into the new domain
  kDeviceAttach,          // virtual disk + console device configuration
  kNetworkConfig,         // vNIC creation, bridge attach, address binding
  kGuestResume,           // unpausing the snapshotted guest
  kNumPhases,
};

const char* ClonePhaseName(ClonePhase phase);

struct CloneLatencyModel {
  Duration control_plane_rpc = Duration::Millis(11);
  Duration domain_create = Duration::Millis(98);
  Duration memory_map_fixed = Duration::Millis(18);
  // Per guest page cost of establishing the CoW mapping (grant/page-table work).
  Duration memory_map_per_page = Duration::Nanos(5200);
  Duration device_attach = Duration::Millis(149);
  Duration network_config = Duration::Millis(176);
  Duration guest_resume = Duration::Millis(26);

  // Full-copy cloning additionally copies every image page at this per-page cost
  // (memcpy bandwidth of mid-2000s hardware, ~2 GB/s).
  Duration full_copy_per_page = Duration::Nanos(2000);

  // Cold boot baseline: what creating a honeypot costs without flash cloning.
  Duration cold_boot = Duration::Seconds(38.0);

  // VM teardown (recycling) control-plane cost.
  Duration domain_destroy = Duration::Millis(40);

  // Per-page cost of working-set prefetch at clone time (batched CoW break:
  // pooled buffer + one 4 KiB copy, reservation amortised across the run).
  // Charged only when a clone requests prediction, outside the phase table so
  // the classic breakdown is untouched.
  Duration ws_prefetch_per_page = Duration::Nanos(300);

  Duration PhaseCost(ClonePhase phase, uint32_t image_pages) const;
  Duration FlashCloneTotal(uint32_t image_pages) const;
  Duration FullCopyTotal(uint32_t image_pages) const;

  // The paper's projected optimized control plane (rewrite of xend paths in C).
  static CloneLatencyModel Optimized();
};

}  // namespace potemkin

#endif  // SRC_HV_LATENCY_MODEL_H_
