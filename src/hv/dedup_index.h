// Persistent content-hash -> machine-frame index for incremental page dedup.
//
// The full-scan deduplicator re-reads and re-hashes every private page on the
// host per pass; this index makes the pass incremental. It remembers, for every
// page examined by a previous pass, the frame's content hash plus (for frames
// still privately mapped) the owning address space — the information needed to
// merge a *newly dirtied* page against all previously-seen content without
// rescanning anything clean. The FrameAllocator keeps it consistent: a write to
// an indexed frame or a frame free drops the stale entry (O(1) armed check on
// the hot write path, bucket erase only for frames actually indexed).
#ifndef SRC_HV_DEDUP_INDEX_H_
#define SRC_HV_DEDUP_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/hv/types.h"

namespace potemkin {

class AddressSpace;

class DedupIndex {
 public:
  struct Candidate {
    FrameId frame = kInvalidFrame;
    // Non-null while the frame is a private mapping: the single address space
    // that must be flipped to read-only CoW before the frame can be shared.
    AddressSpace* owner_as = nullptr;
    Gpfn owner_gpfn = 0;
  };

  // Registers a frame seen by a dedup pass. `owner` non-null for a private
  // mapping, null for a frame already shared CoW.
  void Insert(FrameId frame, uint64_t hash, AddressSpace* owner, Gpfn owner_gpfn);

  // Marks a previously-private indexed frame as shared (its owner mapping was
  // converted to CoW by a merge).
  void MarkShared(FrameId frame);

  // Allocator hooks: content changed / frame died -> entry is stale.
  void OnFrameWritten(FrameId frame) {
    if (frame < meta_.size() && meta_[frame].indexed) {
      Drop(frame);
    }
  }
  void OnFrameFreed(FrameId frame) { OnFrameWritten(frame); }

  // Visits every indexed frame with this content hash: fn(const Candidate&).
  // Returning entries may have colliding hashes; callers must byte-compare.
  template <typename Fn>
  void ForEachCandidate(uint64_t hash, Fn&& fn) const {
    auto it = buckets_.find(hash);
    if (it == buckets_.end()) {
      return;
    }
    for (const FrameId frame : it->second) {
      const FrameMeta& meta = meta_[frame];
      fn(Candidate{frame, meta.owner_as, meta.owner_gpfn});
    }
  }

  bool Contains(FrameId frame) const {
    return frame < meta_.size() && meta_[frame].indexed;
  }
  size_t size() const { return indexed_count_; }
  void Clear();

 private:
  struct FrameMeta {
    uint64_t hash = 0;
    AddressSpace* owner_as = nullptr;
    Gpfn owner_gpfn = 0;
    bool indexed = false;
  };

  void Drop(FrameId frame);

  // hash -> frames with that content hash (usually one).
  std::unordered_map<uint64_t, std::vector<FrameId>> buckets_;
  std::vector<FrameMeta> meta_;  // by FrameId
  size_t indexed_count_ = 0;
};

}  // namespace potemkin

#endif  // SRC_HV_DEDUP_INDEX_H_
