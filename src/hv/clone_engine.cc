#include "src/hv/clone_engine.h"

#include "src/base/log.h"

namespace potemkin {

CloneEngine::CloneEngine(EventLoop* loop, PhysicalHost* host,
                         const CloneEngineConfig& config)
    : loop_(loop), host_(host), config_(config) {
  PK_CHECK(config_.control_plane_workers >= 1);
}

void CloneEngine::RequestClone(ImageId image, const std::string& vm_name,
                               Ipv4Address ip, MacAddress mac, CloneCallback callback) {
  Job job;
  job.image = image;
  job.vm_name = vm_name;
  job.ip = ip;
  job.mac = mac;
  job.callback = std::move(callback);
  job.requested = loop_->Now();
  queue_.push_back(std::move(job));
  MaybeStartWork();
}

void CloneEngine::RequestDestroy(VmId vm, std::function<void()> callback) {
  Job job;
  job.is_destroy = true;
  job.victim = vm;
  job.destroy_callback = std::move(callback);
  job.requested = loop_->Now();
  queue_.push_back(std::move(job));
  MaybeStartWork();
}

void CloneEngine::MaybeStartWork() {
  while (busy_workers_ < config_.control_plane_workers && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_workers_;
    if (job.is_destroy) {
      ExecuteDestroy(std::move(job));
    } else {
      ExecuteClone(std::move(job));
    }
  }
}

void CloneEngine::ExecuteClone(Job job) {
  CloneTiming timing;
  timing.requested = job.requested;
  timing.started = loop_->Now();

  const ReferenceImage* image = host_->image(job.image);
  if (image == nullptr) {
    timing.finished = loop_->Now();
    if (job.callback) {
      job.callback(nullptr, timing);
    }
    ++clones_failed_;
    FinishWorker();
    return;
  }
  const uint32_t pages = image->num_pages();

  // Charge the control-plane phases.
  Duration elapsed = Duration::Zero();
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    const Duration cost = config_.latency.PhaseCost(static_cast<ClonePhase>(p), pages);
    timing.phase[static_cast<size_t>(p)] = cost;
    elapsed += cost;
  }
  if (config_.kind == CloneKind::kFullCopy || config_.kind == CloneKind::kColdBoot) {
    timing.memory_copy = config_.latency.full_copy_per_page * static_cast<double>(pages);
    elapsed += timing.memory_copy;
  }
  if (config_.kind == CloneKind::kColdBoot) {
    timing.boot = config_.latency.cold_boot;
    elapsed += timing.boot;
  }

  loop_->ScheduleAfter(elapsed, [this, job = std::move(job), timing]() mutable {
    timing.finished = loop_->Now();
    VirtualMachine* vm = host_->CreateClone(job.image, config_.kind, job.vm_name);
    if (vm != nullptr) {
      vm->BindAddress(job.ip, job.mac);
      vm->set_state(VmState::kRunning);
      vm->set_created_at(timing.finished);
      vm->set_last_activity(timing.finished);
      ++clones_completed_;
      latency_hist_.Record(timing.Total().millis_f());
      queue_wait_hist_.Record(timing.QueueWait().millis_f());
    } else {
      ++clones_failed_;
    }
    if (job.callback) {
      job.callback(vm, timing);
    }
    FinishWorker();
  });
}

void CloneEngine::ExecuteDestroy(Job job) {
  loop_->ScheduleAfter(config_.latency.domain_destroy, [this, job = std::move(job)]() {
    host_->DestroyVm(job.victim);
    if (job.destroy_callback) {
      job.destroy_callback();
    }
    FinishWorker();
  });
}

void CloneEngine::FinishWorker() {
  PK_CHECK(busy_workers_ > 0);
  --busy_workers_;
  MaybeStartWork();
}

}  // namespace potemkin
