#include "src/hv/clone_engine.h"

#include "src/base/log.h"

namespace potemkin {

namespace {

// Metric-name-safe phase slugs; ClonePhaseName returns display forms (with
// spaces) for the trace viewer, which would make awkward metric rows.
const char* ClonePhaseSlug(ClonePhase phase) {
  switch (phase) {
    case ClonePhase::kControlPlaneRpc:
      return "control_plane_rpc";
    case ClonePhase::kDomainCreate:
      return "domain_create";
    case ClonePhase::kMemoryMapSetup:
      return "memory_map";
    case ClonePhase::kDeviceAttach:
      return "device_attach";
    case ClonePhase::kNetworkConfig:
      return "network_config";
    case ClonePhase::kGuestResume:
      return "guest_resume";
    case ClonePhase::kNumPhases:
      break;
  }
  return "unknown";
}

}  // namespace

CloneEngine::CloneEngine(EventLoop* loop, PhysicalHost* host,
                         const CloneEngineConfig& config)
    : loop_(loop),
      host_(host),
      config_(config),
      obs_(ObsOrDefault(config.obs)),
      track_(obs_.trace.RegisterTrack(config.trace_track)) {
  PK_CHECK(config_.control_plane_workers >= 1);
  // Counter names are shared across engines on purpose: same name -> same
  // storage, so a multi-host farm aggregates clone counts for free.
  m_completed_ = obs_.metrics.RegisterCounter("clone.completed", "count");
  m_failed_ = obs_.metrics.RegisterCounter("clone.failed", "count");
  m_destroyed_ = obs_.metrics.RegisterCounter("clone.destroyed", "count");
  m_pressure_reclaims_ =
      obs_.metrics.RegisterCounter("clone.pressure_reclaims", "count");
  // Registry-side latency distribution (exports _count/_p50/_p99/_max rows in
  // snapshots — the watchdog's clone_latency_p99 rule reads the _p99 row).
  m_latency_ms_ = obs_.metrics.RegisterHistogram(
      "clone.latency_ms", "ms", ExponentialBuckets(0.5, 2.0, 12));
  // Log-linear ns distributions per clone phase plus the end-to-end total:
  // the paper's breakdown table as live percentiles (p999 included) instead
  // of coarse fixed buckets.
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    m_phase_ns_[static_cast<size_t>(p)] = obs_.metrics.RegisterLatency(
        std::string("clone.phase_ns.") + ClonePhaseSlug(static_cast<ClonePhase>(p)),
        "ns");
  }
  m_total_ns_ = obs_.metrics.RegisterLatency("clone.phase_ns.total", "ns");
}

void CloneEngine::RequestClone(ImageId image, const std::string& vm_name,
                               Ipv4Address ip, MacAddress mac, SessionId session,
                               CloneCallback callback) {
  RequestClone(image, vm_name, ip, mac, session, config_.clone_options,
               std::move(callback));
}

void CloneEngine::RequestClone(ImageId image, const std::string& vm_name,
                               Ipv4Address ip, MacAddress mac, SessionId session,
                               const CloneOptions& options,
                               CloneCallback callback) {
  // Relieve memory pressure *before* the clone enters the queue: the victims'
  // teardowns run ahead of it on the control plane, so by the time the clone
  // materialises pages the frames are back.
  if (config_.pressure_reclaim_batch > 0 && host_->UnderMemoryPressure()) {
    ReclaimUnderPressure(config_.pressure_reclaim_batch);
  }
  Job job;
  job.image = image;
  job.vm_name = vm_name;
  job.ip = ip;
  job.mac = mac;
  job.session = session;
  job.options = options;
  job.callback = std::move(callback);
  job.requested = loop_->Now();
  queue_.push_back(std::move(job));
  MaybeStartWork();
}

size_t CloneEngine::ReclaimUnderPressure(size_t max_victims) {
  if (max_victims == 0 || !host_->UnderMemoryPressure()) {
    return 0;
  }
  const std::vector<VmId> victims = host_->PressureVictims(max_victims);
  for (const VmId victim : victims) {
    if (pressure_reclaim_) {
      pressure_reclaim_(victim);
    } else {
      // Quiesce immediately so the victim stops being a reclaim candidate
      // while its teardown waits in the control-plane queue.
      if (VirtualMachine* vm = host_->FindVm(victim)) {
        vm->set_state(VmState::kPaused);
      }
      RequestDestroy(victim);
    }
    ++pressure_reclaims_;
    m_pressure_reclaims_.Inc();
  }
  return victims.size();
}

void CloneEngine::RequestDestroy(VmId vm, std::function<void()> callback) {
  Job job;
  job.is_destroy = true;
  job.victim = vm;
  job.destroy_callback = std::move(callback);
  job.requested = loop_->Now();
  queue_.push_back(std::move(job));
  MaybeStartWork();
}

void CloneEngine::MaybeStartWork() {
  while (busy_workers_ < config_.control_plane_workers && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_workers_;
    if (job.is_destroy) {
      ExecuteDestroy(std::move(job));
    } else {
      ExecuteClone(std::move(job));
    }
  }
}

void CloneEngine::ExecuteClone(Job job) {
  CloneTiming timing;
  timing.requested = job.requested;
  timing.started = loop_->Now();
  // The clone left the control-plane queue and started executing; the queue
  // wait is visible in the timeline as (started - kCloneRequested time).
  obs_.ledger.Append(LedgerEvent::kCloneStarted, job.session,
                     timing.started.nanos(), job.ip.value(),
                     static_cast<uint64_t>(host_->id()));

  const ReferenceImage* image = host_->image(job.image);
  if (image == nullptr) {
    timing.finished = loop_->Now();
    if (job.callback) {
      job.callback(nullptr, timing);
    }
    ++clones_failed_;
    FinishWorker();
    return;
  }
  const uint32_t pages = image->num_pages();

  // Charge the control-plane phases.
  Duration elapsed = Duration::Zero();
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    const Duration cost = config_.latency.PhaseCost(static_cast<ClonePhase>(p), pages);
    timing.phase[static_cast<size_t>(p)] = cost;
    elapsed += cost;
  }
  if (config_.kind == CloneKind::kFullCopy || config_.kind == CloneKind::kColdBoot) {
    timing.memory_copy = config_.latency.full_copy_per_page * static_cast<double>(pages);
    elapsed += timing.memory_copy;
  }
  if (config_.kind == CloneKind::kColdBoot) {
    timing.boot = config_.latency.cold_boot;
    elapsed += timing.boot;
  }
  if (job.options.use_working_set) {
    // Charge the prediction's batched pre-materialisation, using the
    // prediction as it stands at request time (a session retiring on another
    // worker before CreateClone runs can shift the count slightly; the charge
    // is a model, not an invariant).
    if (const WorkingSetProfile* profile =
            image->FindProfile(job.options.attack_class)) {
      const size_t predicted =
          profile->PredictFirst(job.options.prefetch_pages).size();
      if (predicted > 0) {
        timing.ws_prefetch = config_.latency.ws_prefetch_per_page *
                             static_cast<double>(predicted);
        elapsed += timing.ws_prefetch;
      }
    }
  }

  if (latency_scale_ != 1.0) {
    elapsed = elapsed * latency_scale_;
  }
  loop_->ScheduleAfter(elapsed, [this, job = std::move(job), timing]() mutable {
    timing.finished = loop_->Now();
    VirtualMachine* vm =
        host_->CreateClone(job.image, config_.kind, job.vm_name, job.options);
    if (vm != nullptr) {
      vm->BindAddress(job.ip, job.mac);
      vm->set_state(VmState::kRunning);
      vm->set_created_at(timing.finished);
      vm->set_last_activity(timing.finished);
      ++clones_completed_;
      m_completed_.Inc();
      latency_hist_.Record(timing.Total().millis_f());
      m_latency_ms_.Record(timing.Total().millis_f());
      queue_wait_hist_.Record(timing.QueueWait().millis_f());
      RecordCloneSpans(timing);
    } else {
      ++clones_failed_;
      m_failed_.Inc();
    }
    if (job.callback) {
      job.callback(vm, timing);
    }
    FinishWorker();
  });
}

void CloneEngine::RecordCloneSpans(const CloneTiming& timing) {
  // The engine charges the whole clone as one lump of virtual time, so the
  // phase boundaries are reconstructed here from the per-phase costs the model
  // already attributed — the spans are exactly the model's breakdown laid out
  // sequentially from `started`, which is also the order the real control
  // plane executed them.
  TraceRecorder& trace = obs_.trace;
  trace.RecordSpan(track_, CloneKindName(config_.kind), timing.started,
                   timing.finished);
  TimePoint cursor = timing.started;
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    const Duration cost = timing.phase[static_cast<size_t>(p)];
    trace.RecordSpan(track_, ClonePhaseName(static_cast<ClonePhase>(p)), cursor,
                     cursor + cost);
    m_phase_ns_[static_cast<size_t>(p)].Record(
        static_cast<uint64_t>(cost.nanos()));
    cursor = cursor + cost;
  }
  m_total_ns_.Record(
      static_cast<uint64_t>((timing.finished - timing.started).nanos()));
  if (!timing.memory_copy.IsZero()) {
    trace.RecordSpan(track_, "memory_copy", cursor, cursor + timing.memory_copy);
    cursor = cursor + timing.memory_copy;
  }
  if (!timing.boot.IsZero()) {
    trace.RecordSpan(track_, "guest_boot", cursor, cursor + timing.boot);
    cursor = cursor + timing.boot;
  }
  if (!timing.ws_prefetch.IsZero()) {
    trace.RecordSpan(track_, "ws_prefetch", cursor, cursor + timing.ws_prefetch);
  }
}

void CloneEngine::ExecuteDestroy(Job job) {
  const TimePoint begin = loop_->Now();
  loop_->ScheduleAfter(config_.latency.domain_destroy * latency_scale_,
                       [this, job = std::move(job), begin]() {
    host_->DestroyVm(job.victim);
    ++destroys_completed_;
    m_destroyed_.Inc();
    obs_.trace.RecordSpan(track_, "domain_destroy", begin, loop_->Now());
    if (job.destroy_callback) {
      job.destroy_callback();
    }
    FinishWorker();
  });
}

void CloneEngine::FinishWorker() {
  PK_CHECK(busy_workers_ > 0);
  --busy_workers_;
  MaybeStartWork();
}

}  // namespace potemkin
