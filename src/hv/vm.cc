#include "src/hv/vm.h"

namespace potemkin {

namespace {
// Fixed per-domain overhead (descriptor, vcpu state, shadow structures): the paper
// cites per-VM overheads beyond the memory delta; 1 MiB is a conservative model.
constexpr uint64_t kDomainOverheadBytes = 1 << 20;
}  // namespace

const char* VmStateName(VmState state) {
  switch (state) {
    case VmState::kCloning:
      return "CLONING";
    case VmState::kRunning:
      return "RUNNING";
    case VmState::kPaused:
      return "PAUSED";
    case VmState::kRetired:
      return "RETIRED";
  }
  return "?";
}

VirtualMachine::VirtualMachine(VmId id, std::string name, FrameAllocator* allocator,
                               uint32_t num_pages, const ReferenceDisk* disk_base)
    : id_(id), name_(std::move(name)), memory_(allocator, num_pages), disk_(disk_base) {}

void VirtualMachine::Transmit(Packet packet) {
  ++packets_sent_;
  if (tx_) {
    tx_(*this, std::move(packet));
  }
}

uint64_t VirtualMachine::FootprintBytes() const {
  return memory_.private_bytes() + kDomainOverheadBytes;
}

}  // namespace potemkin
