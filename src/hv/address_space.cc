#include "src/hv/address_space.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

AddressSpace::AddressSpace(FrameAllocator* allocator, uint32_t num_pages)
    : allocator_(allocator),
      ptes_(num_pages),
      track_dirty_(allocator->mode() == ContentMode::kStoreBytes) {}

AddressSpace::~AddressSpace() { ReleaseAll(); }

void AddressSpace::MapSharedCow(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size()) << "map outside address space";
  Unmap(gpfn);
  allocator_->Ref(frame);
  ptes_[gpfn] = Pte{frame, true, true};
  ++shared_pages_;
}

void AddressSpace::MapPrivateOwned(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size()) << "map outside address space";
  Unmap(gpfn);
  ptes_[gpfn] = Pte{frame, true, false};
  ++private_pages_;
  if (track_dirty_) {
    MarkDirty(gpfn);  // new private content this address space has not exposed yet
  }
}

void AddressSpace::Unmap(Gpfn gpfn) {
  PK_CHECK(gpfn < ptes_.size()) << "unmap outside address space";
  Pte& pte = ptes_[gpfn];
  if (!pte.present) {
    return;
  }
  if (pte.cow) {
    PK_CHECK(shared_pages_ > 0);
    --shared_pages_;
  } else {
    PK_CHECK(private_pages_ > 0);
    --private_pages_;
  }
  allocator_->Unref(pte.frame);
  pte = Pte{};
}

bool AddressSpace::MakeWritable(Gpfn gpfn, MemAccessResult* result) {
  Pte& pte = ptes_[gpfn];
  if (pte.present && !pte.cow) {
    return true;
  }
  if (!pte.present) {
    // Zero-fill-on-demand private page.
    const FrameId frame = allocator_->AllocateZeroed();
    if (frame == kInvalidFrame) {
      ++stats_.failed_cow_breaks;
      *result = MemAccessResult::kOutOfMemory;
      return false;
    }
    pte = Pte{frame, true, false};
    ++private_pages_;
    ++stats_.zero_fills;
    return true;
  }
  // CoW break: copy the shared frame into a private one.
  const FrameId copy = allocator_->CloneFrame(pte.frame);
  if (copy == kInvalidFrame) {
    ++stats_.failed_cow_breaks;
    *result = MemAccessResult::kOutOfMemory;
    return false;
  }
  allocator_->Unref(pte.frame);
  PK_CHECK(shared_pages_ > 0);
  --shared_pages_;
  pte = Pte{copy, true, false};
  ++private_pages_;
  ++stats_.cow_faults;
  *result = MemAccessResult::kCowBreak;
  return true;
}

MemAccessResult AddressSpace::WriteGuest(uint64_t gpaddr,
                                         std::span<const uint8_t> bytes) {
  if (gpaddr + bytes.size() > size_bytes()) {
    return MemAccessResult::kBadAddress;
  }
  ++stats_.writes;
  MemAccessResult result = MemAccessResult::kOk;
  size_t written = 0;
  while (written < bytes.size()) {
    const uint64_t addr = gpaddr + written;
    const Gpfn gpfn = static_cast<Gpfn>(addr / kPageSize);
    const size_t offset = addr % kPageSize;
    const size_t chunk = std::min(bytes.size() - written, kPageSize - offset);
    if (!MakeWritable(gpfn, &result)) {
      return result;  // kOutOfMemory
    }
    if (track_dirty_) {
      MarkDirty(gpfn);
    }
    allocator_->Write(ptes_[gpfn].frame, offset, bytes.subspan(written, chunk));
    written += chunk;
  }
  return result;
}

MemAccessResult AddressSpace::ReadGuest(uint64_t gpaddr, std::span<uint8_t> out) const {
  if (gpaddr + out.size() > size_bytes()) {
    return MemAccessResult::kBadAddress;
  }
  ++stats_.reads;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t addr = gpaddr + done;
    const Gpfn gpfn = static_cast<Gpfn>(addr / kPageSize);
    const size_t offset = addr % kPageSize;
    const size_t chunk = std::min(out.size() - done, kPageSize - offset);
    const Pte& pte = ptes_[gpfn];
    if (!pte.present) {
      std::fill_n(out.data() + done, chunk, 0);
    } else {
      allocator_->Read(pte.frame, offset, out.subspan(done, chunk));
    }
    done += chunk;
  }
  return MemAccessResult::kOk;
}

MemAccessResult AddressSpace::TouchPages(Gpfn first_gpfn, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    const Gpfn gpfn = first_gpfn + i;
    if (gpfn >= ptes_.size()) {
      return MemAccessResult::kBadAddress;
    }
    const uint8_t marker = static_cast<uint8_t>(0xd1 + i);
    const auto result =
        WriteGuest(static_cast<uint64_t>(gpfn) * kPageSize, std::span(&marker, 1));
    if (result == MemAccessResult::kOutOfMemory) {
      return result;
    }
  }
  return MemAccessResult::kOk;
}

bool AddressSpace::IsMapped(Gpfn gpfn) const {
  return gpfn < ptes_.size() && ptes_[gpfn].present;
}

bool AddressSpace::IsCowShared(Gpfn gpfn) const {
  return gpfn < ptes_.size() && ptes_[gpfn].present && ptes_[gpfn].cow;
}

FrameId AddressSpace::FrameAt(Gpfn gpfn) const {
  PK_CHECK(gpfn < ptes_.size()) << "FrameAt outside address space";
  return ptes_[gpfn].present ? ptes_[gpfn].frame : kInvalidFrame;
}

void AddressSpace::ConvertPrivateToSharedCow(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size() && ptes_[gpfn].present && !ptes_[gpfn].cow)
      << "convert of non-private page";
  MapSharedCow(gpfn, frame);  // Unmaps (releasing the private frame) then shares.
}

void AddressSpace::MarkAllPrivateDirty() {
  if (!track_dirty_) {
    return;
  }
  for (Gpfn gpfn = 0; gpfn < ptes_.size(); ++gpfn) {
    if (ptes_[gpfn].present && !ptes_[gpfn].cow) {
      MarkDirty(gpfn);
    }
  }
}

void AddressSpace::ReleaseAll() {
  for (Gpfn gpfn = 0; gpfn < ptes_.size(); ++gpfn) {
    if (ptes_[gpfn].present) {
      Unmap(gpfn);
    }
  }
}

}  // namespace potemkin
