#include "src/hv/address_space.h"

#include <algorithm>

#include "src/base/log.h"

namespace potemkin {

AddressSpace::AddressSpace(FrameAllocator* allocator, uint32_t num_pages)
    : allocator_(allocator),
      ptes_(num_pages),
      track_dirty_(allocator->mode() == ContentMode::kStoreBytes) {}

AddressSpace::~AddressSpace() { ReleaseAll(); }

void AddressSpace::MapSharedCow(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size()) << "map outside address space";
  Unmap(gpfn);
  allocator_->Ref(frame);
  ptes_[gpfn] = Pte{frame, true, true};
  ++shared_pages_;
}

void AddressSpace::MapSharedCowRun(Gpfn first_gpfn,
                                   std::span<const FrameId> frames) {
  const uint32_t count = static_cast<uint32_t>(frames.size());
  PK_CHECK(first_gpfn + count <= ptes_.size()) << "run maps outside address space";
  for (uint32_t i = 0; i < count; ++i) {
    Pte& pte = ptes_[first_gpfn + i];
    PK_CHECK(!pte.present) << "run map over live mapping";
    allocator_->Ref(frames[i]);
    pte = Pte{frames[i], true, true};
  }
  shared_pages_ += count;
}

void AddressSpace::MapPrivateOwned(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size()) << "map outside address space";
  Unmap(gpfn);
  ptes_[gpfn] = Pte{frame, true, false};
  ++private_pages_;
  if (track_dirty_) {
    MarkDirty(gpfn);  // new private content this address space has not exposed yet
  }
}

void AddressSpace::Unmap(Gpfn gpfn) {
  PK_CHECK(gpfn < ptes_.size()) << "unmap outside address space";
  Pte& pte = ptes_[gpfn];
  if (!pte.present) {
    return;
  }
  if (pte.cow) {
    PK_CHECK(shared_pages_ > 0);
    --shared_pages_;
  } else {
    PK_CHECK(private_pages_ > 0);
    --private_pages_;
  }
  allocator_->Unref(pte.frame);
  pte = Pte{};
}

bool AddressSpace::MakeWritable(Gpfn gpfn, MemAccessResult* result) {
  Pte& pte = ptes_[gpfn];
  if (pte.present && !pte.cow) {
    if (pte.prefetched) {
      // First real guest write to a speculatively materialised page: the
      // working-set predictor got this one right.
      pte.prefetched = false;
      ++stats_.prefetch_hits;
    }
    return true;
  }
  if (!pte.present) {
    // Zero-fill-on-demand private page.
    const FrameId frame = allocator_->AllocateZeroed();
    if (frame == kInvalidFrame) {
      ++stats_.failed_cow_breaks;
      *result = MemAccessResult::kOutOfMemory;
      return false;
    }
    pte = Pte{frame, true, false};
    ++private_pages_;
    ++stats_.zero_fills;
    RecordTouch(gpfn);
    return true;
  }
  // CoW break: copy the shared frame into a private one.
  const FrameId copy = allocator_->CloneFrame(pte.frame);
  if (copy == kInvalidFrame) {
    ++stats_.failed_cow_breaks;
    *result = MemAccessResult::kOutOfMemory;
    return false;
  }
  allocator_->Unref(pte.frame);
  PK_CHECK(shared_pages_ > 0);
  --shared_pages_;
  pte = Pte{copy, true, false};
  ++private_pages_;
  ++stats_.cow_faults;
  RecordTouch(gpfn);
  *result = MemAccessResult::kCowBreak;
  return true;
}

MemAccessResult AddressSpace::FaultRangeInternal(Gpfn first_gpfn, uint32_t count,
                                                 bool prefetch) {
  if (first_gpfn + count > ptes_.size()) {
    return MemAccessResult::kBadAddress;
  }
  ++stats_.batch_faults;
  // Pass 1: classify the run. Already-private pages need nothing; the rest
  // split into CoW breaks (clone the shared source) and zero fills.
  scratch_cow_gpfns_.clear();
  scratch_cow_src_.clear();
  scratch_zf_gpfns_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    const Pte& pte = ptes_[first_gpfn + i];
    if (pte.present && !pte.cow) {
      continue;
    }
    if (pte.present) {
      scratch_cow_gpfns_.push_back(first_gpfn + i);
      scratch_cow_src_.push_back(pte.frame);
    } else {
      scratch_zf_gpfns_.push_back(first_gpfn + i);
    }
  }
  const uint32_t cow_count = static_cast<uint32_t>(scratch_cow_gpfns_.size());
  const uint32_t zf_count = static_cast<uint32_t>(scratch_zf_gpfns_.size());
  if (cow_count + zf_count == 0) {
    return MemAccessResult::kOk;
  }
  // Pass 2: one reservation for the whole run. Clone first, then zero-fill;
  // if the second leg is denied, roll the clones back so the range is
  // untouched (all-or-nothing, mirroring the allocator's batch contract).
  scratch_cow_new_.resize(cow_count);
  scratch_zf_new_.resize(zf_count);
  if (cow_count > 0 &&
      allocator_->CloneFrameBatch(scratch_cow_src_, scratch_cow_new_.data()) !=
          FrameAllocStatus::kOk) {
    ++stats_.failed_cow_breaks;
    return MemAccessResult::kOutOfMemory;
  }
  if (zf_count > 0 &&
      allocator_->AllocateBatch(zf_count, scratch_zf_new_.data()) !=
          FrameAllocStatus::kOk) {
    if (cow_count > 0) {
      allocator_->UnrefBatch(scratch_cow_new_);
    }
    ++stats_.failed_cow_breaks;
    return MemAccessResult::kOutOfMemory;
  }
  // Pass 3: flip the PTEs and settle bookkeeping once for the run. The old
  // shared frames drop their references as a batch.
  for (uint32_t i = 0; i < cow_count; ++i) {
    Pte& pte = ptes_[scratch_cow_gpfns_[i]];
    pte.frame = scratch_cow_new_[i];
    pte.cow = false;
    pte.prefetched = prefetch;
    if (track_dirty_) {
      MarkDirty(scratch_cow_gpfns_[i]);
    }
    if (!prefetch) {
      RecordTouch(scratch_cow_gpfns_[i]);
    }
  }
  for (uint32_t i = 0; i < zf_count; ++i) {
    Pte& pte = ptes_[scratch_zf_gpfns_[i]];
    pte = Pte{scratch_zf_new_[i], true, false};
    pte.prefetched = prefetch;
    if (track_dirty_) {
      MarkDirty(scratch_zf_gpfns_[i]);
    }
    if (!prefetch) {
      RecordTouch(scratch_zf_gpfns_[i]);
    }
  }
  if (cow_count > 0) {
    allocator_->UnrefBatch(scratch_cow_src_);
    PK_CHECK(shared_pages_ >= cow_count);
    shared_pages_ -= cow_count;
  }
  private_pages_ += cow_count + zf_count;
  stats_.cow_faults += cow_count;
  stats_.zero_fills += zf_count;
  if (prefetch) {
    stats_.prefetched_pages += cow_count + zf_count;
  }
  return cow_count > 0 ? MemAccessResult::kCowBreak : MemAccessResult::kOk;
}

MemAccessResult AddressSpace::FaultRange(Gpfn first_gpfn, uint32_t count) {
  return FaultRangeInternal(first_gpfn, count, /*prefetch=*/false);
}

MemAccessResult AddressSpace::PrefetchRange(Gpfn first_gpfn, uint32_t count) {
  return FaultRangeInternal(first_gpfn, count, /*prefetch=*/true);
}

MemAccessResult AddressSpace::WriteGuest(uint64_t gpaddr,
                                         std::span<const uint8_t> bytes) {
  if (gpaddr + bytes.size() > size_bytes()) {
    return MemAccessResult::kBadAddress;
  }
  ++stats_.writes;
  MemAccessResult result = MemAccessResult::kOk;
  size_t written = 0;
  while (written < bytes.size()) {
    const uint64_t addr = gpaddr + written;
    const Gpfn gpfn = static_cast<Gpfn>(addr / kPageSize);
    const size_t offset = addr % kPageSize;
    const size_t chunk = std::min(bytes.size() - written, kPageSize - offset);
    if (!MakeWritable(gpfn, &result)) {
      return result;  // kOutOfMemory
    }
    if (track_dirty_) {
      MarkDirty(gpfn);
    }
    allocator_->Write(ptes_[gpfn].frame, offset, bytes.subspan(written, chunk));
    written += chunk;
  }
  return result;
}

MemAccessResult AddressSpace::ReadGuest(uint64_t gpaddr, std::span<uint8_t> out) const {
  if (gpaddr + out.size() > size_bytes()) {
    return MemAccessResult::kBadAddress;
  }
  ++stats_.reads;
  size_t done = 0;
  while (done < out.size()) {
    const uint64_t addr = gpaddr + done;
    const Gpfn gpfn = static_cast<Gpfn>(addr / kPageSize);
    const size_t offset = addr % kPageSize;
    const size_t chunk = std::min(out.size() - done, kPageSize - offset);
    const Pte& pte = ptes_[gpfn];
    if (!pte.present) {
      std::fill_n(out.data() + done, chunk, 0);
    } else {
      allocator_->Read(pte.frame, offset, out.subspan(done, chunk));
    }
    done += chunk;
  }
  return MemAccessResult::kOk;
}

MemAccessResult AddressSpace::TouchPages(Gpfn first_gpfn, uint32_t count) {
  for (uint32_t i = 0; i < count; ++i) {
    const Gpfn gpfn = first_gpfn + i;
    if (gpfn >= ptes_.size()) {
      return MemAccessResult::kBadAddress;
    }
    const uint8_t marker = static_cast<uint8_t>(0xd1 + i);
    const auto result =
        WriteGuest(static_cast<uint64_t>(gpfn) * kPageSize, std::span(&marker, 1));
    if (result == MemAccessResult::kOutOfMemory) {
      return result;
    }
  }
  return MemAccessResult::kOk;
}

MemAccessResult AddressSpace::TouchPagesBatched(Gpfn first_gpfn, uint32_t count) {
  if (first_gpfn + count > ptes_.size()) {
    return MemAccessResult::kBadAddress;
  }
  const MemAccessResult faulted = FaultRange(first_gpfn, count);
  if (faulted == MemAccessResult::kOutOfMemory) {
    return faulted;
  }
  // Same per-page markers as TouchPages, but every page is already private so
  // the writes cannot fault.
  for (uint32_t i = 0; i < count; ++i) {
    const Gpfn gpfn = first_gpfn + i;
    const uint8_t marker = static_cast<uint8_t>(0xd1 + i);
    ++stats_.writes;
    Pte& pte = ptes_[gpfn];
    if (pte.prefetched) {
      pte.prefetched = false;
      ++stats_.prefetch_hits;
    }
    if (track_dirty_) {
      MarkDirty(gpfn);
    }
    allocator_->Write(pte.frame, 0, std::span(&marker, 1));
  }
  return faulted;
}

bool AddressSpace::IsMapped(Gpfn gpfn) const {
  return gpfn < ptes_.size() && ptes_[gpfn].present;
}

bool AddressSpace::IsCowShared(Gpfn gpfn) const {
  return gpfn < ptes_.size() && ptes_[gpfn].present && ptes_[gpfn].cow;
}

FrameId AddressSpace::FrameAt(Gpfn gpfn) const {
  PK_CHECK(gpfn < ptes_.size()) << "FrameAt outside address space";
  return ptes_[gpfn].present ? ptes_[gpfn].frame : kInvalidFrame;
}

void AddressSpace::ConvertPrivateToSharedCow(Gpfn gpfn, FrameId frame) {
  PK_CHECK(gpfn < ptes_.size() && ptes_[gpfn].present && !ptes_[gpfn].cow)
      << "convert of non-private page";
  MapSharedCow(gpfn, frame);  // Unmaps (releasing the private frame) then shares.
}

void AddressSpace::MarkAllPrivateDirty() {
  if (!track_dirty_) {
    return;
  }
  for (Gpfn gpfn = 0; gpfn < ptes_.size(); ++gpfn) {
    if (ptes_[gpfn].present && !ptes_[gpfn].cow) {
      MarkDirty(gpfn);
    }
  }
}

void AddressSpace::ReleaseAll() {
  for (Gpfn gpfn = 0; gpfn < ptes_.size(); ++gpfn) {
    if (ptes_[gpfn].present) {
      Unmap(gpfn);
    }
  }
}

}  // namespace potemkin
