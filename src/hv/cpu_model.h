// CPU accounting for physical hosts.
//
// The paper's scalability analysis found the farm memory-bound: honeypot VMs are
// idle almost always, so hundreds share a few cores easily. This accountant makes
// that claim measurable in the reproduction: packet handling, cloning and
// teardown charge CPU time against the host, and telemetry reports utilization —
// which stays low exactly when the memory experiments are hitting their limits.
#ifndef SRC_HV_CPU_MODEL_H_
#define SRC_HV_CPU_MODEL_H_

#include <cstdint>

#include "src/base/time_types.h"

namespace potemkin {

struct CpuCostModel {
  double cores = 2.0;
  // Guest + host cost of receiving/handling one packet in a VM (interrupt,
  // copy, stack traversal, service work).
  Duration per_packet_delivered = Duration::Micros(40);
  // Host-side CPU burned by one flash clone / one teardown (control plane work
  // is CPU, not I/O).
  Duration per_clone = Duration::Millis(60);
  Duration per_destroy = Duration::Millis(12);
};

class CpuAccountant {
 public:
  explicit CpuAccountant(const CpuCostModel& model) : model_(model) {}

  const CpuCostModel& model() const { return model_; }

  void ChargePacket() { busy_ += model_.per_packet_delivered; }
  void ChargeClone() { busy_ += model_.per_clone; }
  void ChargeDestroy() { busy_ += model_.per_destroy; }
  void Charge(Duration d) { busy_ += d; }

  Duration busy_time() const { return busy_; }

  // Fraction of total capacity (cores x wall time) consumed by `now`; can exceed
  // 1.0, which means the host is oversubscribed (work would queue in reality).
  double Utilization(TimePoint now) const {
    const double elapsed = now.seconds();
    if (elapsed <= 0.0) {
      return 0.0;
    }
    return busy_.seconds() / (elapsed * model_.cores);
  }

  // Utilization over a window [start, now], given busy time at window start.
  double WindowUtilization(TimePoint start, Duration busy_at_start,
                           TimePoint now) const {
    const double elapsed = (now - start).seconds();
    if (elapsed <= 0.0) {
      return 0.0;
    }
    return (busy_ - busy_at_start).seconds() / (elapsed * model_.cores);
  }

 private:
  CpuCostModel model_;
  Duration busy_;
};

}  // namespace potemkin

#endif  // SRC_HV_CPU_MODEL_H_
