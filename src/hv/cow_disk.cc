#include "src/hv/cow_disk.h"

#include <cstring>

#include "src/base/log.h"
#include "src/base/rng.h"

namespace potemkin {

ReferenceDisk::ReferenceDisk(uint64_t num_blocks, uint64_t content_seed)
    : num_blocks_(num_blocks), content_seed_(content_seed) {}

void ReferenceDisk::ReadBlock(uint64_t block, std::span<uint8_t> out) const {
  PK_CHECK(block < num_blocks_) << "reference disk read out of range";
  PK_CHECK(out.size() == kDiskBlockSize);
  Rng rng(content_seed_ ^ (block * 0xff51afd7ed558ccdull));
  // Filesystem-like content: mostly sparse with per-block signatures.
  std::memset(out.data(), 0, out.size());
  const uint64_t signature = rng.NextU64();
  for (size_t i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>(signature >> (8 * i));
  }
  if (block % 4 != 0) {  // 3/4 of blocks carry dense data
    for (size_t i = 8; i < out.size(); i += 16) {
      out[i] = static_cast<uint8_t>(rng.NextU64());
    }
  }
}

CowDisk::CowDisk(const ReferenceDisk* base) : base_(base) {}

bool CowDisk::ReadBlock(uint64_t block, std::span<uint8_t> out) const {
  if (block >= base_->num_blocks() || out.size() != kDiskBlockSize) {
    return false;
  }
  ++reads_;
  auto it = overlay_.find(block);
  if (it != overlay_.end()) {
    std::memcpy(out.data(), it->second.data(), kDiskBlockSize);
    return true;
  }
  base_->ReadBlock(block, out);
  return true;
}

bool CowDisk::WriteBlock(uint64_t block, std::span<const uint8_t> data) {
  if (block >= base_->num_blocks() || data.size() != kDiskBlockSize) {
    return false;
  }
  ++writes_;
  overlay_[block].assign(data.begin(), data.end());
  return true;
}

bool CowDisk::WriteBytes(uint64_t block, size_t offset, std::span<const uint8_t> data) {
  if (block >= base_->num_blocks() || offset + data.size() > kDiskBlockSize) {
    return false;
  }
  ++writes_;
  auto it = overlay_.find(block);
  if (it == overlay_.end()) {
    std::vector<uint8_t> buf(kDiskBlockSize);
    base_->ReadBlock(block, std::span(buf.data(), buf.size()));
    it = overlay_.emplace(block, std::move(buf)).first;
  }
  std::memcpy(it->second.data() + offset, data.data(), data.size());
  return true;
}

}  // namespace potemkin
