// The flash-clone engine: schedules VM creation/destruction through a host's
// control plane over virtual time, charging the calibrated per-phase latencies.
//
// The paper's prototype funneled all clone operations through one `xend` control
// plane per host, serializing them; the engine models that with a configurable
// number of control-plane workers (1 = the paper's prototype, >1 = the projected
// parallel control plane), which is what the clone-concurrency experiment (F6)
// sweeps.
#ifndef SRC_HV_CLONE_ENGINE_H_
#define SRC_HV_CLONE_ENGINE_H_

#include <array>
#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/base/event_loop.h"
#include "src/base/session.h"
#include "src/base/stats.h"
#include "src/hv/physical_host.h"
#include "src/obs/observability.h"

namespace potemkin {

struct CloneTiming {
  TimePoint requested;
  TimePoint started;
  TimePoint finished;
  std::array<Duration, static_cast<size_t>(ClonePhase::kNumPhases)> phase;
  Duration memory_copy;   // nonzero only for full-copy / cold-boot kinds
  Duration boot;          // nonzero only for cold boot
  Duration ws_prefetch;   // nonzero only when working-set prefetch ran
  Duration QueueWait() const { return started - requested; }
  Duration Total() const { return finished - started; }
};

// Completion callback: vm is nullptr if the clone failed admission or ran out of
// memory mid-copy.
using CloneCallback = std::function<void(VirtualMachine* vm, const CloneTiming&)>;

struct CloneEngineConfig {
  CloneLatencyModel latency;
  CloneKind kind = CloneKind::kFlash;
  int control_plane_workers = 1;
  // Default memory options for clones whose request doesn't carry its own
  // (the zero value = legacy demand-fault behavior).
  CloneOptions clone_options;
  // Proactive pressure relief: when a clone request arrives while the host is
  // over its pressure watermark, reclaim up to this many of the most-idle
  // clones ahead of it in the control-plane queue (their teardown completes
  // while the clone's phases are charged, so the allocation no longer fails).
  // 0 disables; it is also inert unless the host configures watermarks.
  uint32_t pressure_reclaim_batch = 0;
  // Telemetry bundle; null falls back to Observability::Default().
  Observability* obs = nullptr;
  // Trace track every clone's phase spans are recorded on (one per engine, so
  // per-host timelines stay separate in the Chrome trace).
  std::string trace_track = "clone";
};

class CloneEngine {
 public:
  CloneEngine(EventLoop* loop, PhysicalHost* host, const CloneEngineConfig& config);

  // Enqueues a clone. The callback fires (in virtual time) when the clone engine
  // finishes; on success the VM is in kRunning state with `ip`/`mac` bound.
  // `session` is the forensic session of the first-contact packet that
  // triggered the clone (kNoSession for clones not driven by traffic); the
  // engine stamps it on its ledger events so the clone's control-plane story
  // joins the attack timeline.
  void RequestClone(ImageId image, const std::string& vm_name, Ipv4Address ip,
                    MacAddress mac, SessionId session, CloneCallback callback);
  void RequestClone(ImageId image, const std::string& vm_name, Ipv4Address ip,
                    MacAddress mac, CloneCallback callback) {
    RequestClone(image, vm_name, ip, mac, kNoSession, std::move(callback));
  }
  // Variant with per-clone memory options (working-set prefetch / recording /
  // attack class) overriding the config default.
  void RequestClone(ImageId image, const std::string& vm_name, Ipv4Address ip,
                    MacAddress mac, SessionId session,
                    const CloneOptions& options, CloneCallback callback);

  // Enqueues a teardown through the control plane.
  void RequestDestroy(VmId vm, std::function<void()> callback = nullptr);

  // ---- Memory-pressure recycling ----

  // How a pressure victim is retired. Installed by the clone server so guest
  // state, forensics and worm deactivation ride the normal retire path; the
  // default quiesces the VM and queues a control-plane destroy.
  using PressureReclaimHandler = std::function<void(VmId)>;
  void set_pressure_reclaim_handler(PressureReclaimHandler handler) {
    pressure_reclaim_ = std::move(handler);
  }
  // If the host is over its pressure watermark, retires up to `max_victims`
  // most-idle clones (skipping ones still cloning or already quiescing).
  // Returns the number of reclaims issued. Also invoked automatically from
  // RequestClone when config().pressure_reclaim_batch > 0.
  size_t ReclaimUnderPressure(size_t max_victims);
  uint64_t pressure_reclaims() const { return pressure_reclaims_; }

  PhysicalHost* host() { return host_; }
  const CloneEngineConfig& config() const { return config_; }

  // Multiplies every charged control-plane latency (clone phases and domain
  // destroy). 1.0 = the calibrated model; the chaos harness inflates it to
  // simulate a slow host (overloaded dom0, thrashing disk) without touching
  // the latency model itself. Applies to work scheduled after the change;
  // in-flight jobs keep the scale they were charged with.
  void set_latency_scale(double scale) { latency_scale_ = scale; }
  double latency_scale() const { return latency_scale_; }

  size_t queue_depth() const { return queue_.size(); }
  uint64_t clones_completed() const { return clones_completed_; }
  uint64_t clones_failed() const { return clones_failed_; }
  uint64_t destroys_completed() const { return destroys_completed_; }
  // The trace track this engine records clone-phase spans on.
  TraceRecorder::TrackId trace_track() const { return track_; }
  const Histogram& latency_histogram() const { return latency_hist_; }
  const Histogram& queue_wait_histogram() const { return queue_wait_hist_; }

 private:
  struct Job {
    bool is_destroy = false;
    // Clone fields:
    ImageId image = 0;
    std::string vm_name;
    Ipv4Address ip;
    MacAddress mac;
    SessionId session = kNoSession;
    CloneOptions options;
    CloneCallback callback;
    // Destroy fields:
    VmId victim = kInvalidVm;
    std::function<void()> destroy_callback;
    TimePoint requested;
  };

  void MaybeStartWork();
  void ExecuteClone(Job job);
  void ExecuteDestroy(Job job);
  void FinishWorker();
  void RecordCloneSpans(const CloneTiming& timing);

  EventLoop* loop_;
  PhysicalHost* host_;
  CloneEngineConfig config_;
  Observability& obs_;
  TraceRecorder::TrackId track_;
  Counter m_completed_;
  Counter m_failed_;
  Counter m_destroyed_;
  Counter m_pressure_reclaims_;
  FixedHistogram m_latency_ms_;
  // PR-10 percentile telemetry: per-phase and end-to-end clone durations in
  // ns, log-linear so the paper's sub-second tail claims are checkable at
  // p99/p999 (the fixed-bucket clone.latency_ms rows cap out at coarse
  // bounds). Names are farm-wide: every engine aggregates into one
  // distribution per phase.
  std::array<LatencyHistogram, static_cast<size_t>(ClonePhase::kNumPhases)>
      m_phase_ns_;
  LatencyHistogram m_total_ns_;
  PressureReclaimHandler pressure_reclaim_;
  std::deque<Job> queue_;
  double latency_scale_ = 1.0;
  int busy_workers_ = 0;
  uint64_t clones_completed_ = 0;
  uint64_t clones_failed_ = 0;
  uint64_t destroys_completed_ = 0;
  uint64_t pressure_reclaims_ = 0;
  Histogram latency_hist_;     // clone start->finish, milliseconds
  Histogram queue_wait_hist_;  // request->start, milliseconds
};

}  // namespace potemkin

#endif  // SRC_HV_CLONE_ENGINE_H_
