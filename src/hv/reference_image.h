// Reference images: frozen snapshots of a booted guest that flash clones map
// copy-on-write. The paper boots a VM once per host, snapshots it, and serves all
// clones from that snapshot; we synthesize the snapshot's memory contents
// deterministically from a seed (a mix of zero pages, code-like pages and data-like
// pages, with realistic proportions) so tests can verify clones observe exactly the
// image's bytes.
//
// Images are *versioned*: `Refresh` derives a new generation by patching a
// handful of pages (a rebooted/updated snapshot) while structurally sharing
// every unpatched frame with the previous generation via refcounts. New clones
// bind the newest generation; a live clone pins the generation it booted from,
// so the farm never drains to take an image update — an old generation's
// residual frames are released when its last clone is recycled.
//
// Images also carry the per-attack-class working-set profiles ([[working_set.h]])
// recorded from completed sessions, since the profile describes *this image's*
// page layout and travels with it.
#ifndef SRC_HV_REFERENCE_IMAGE_H_
#define SRC_HV_REFERENCE_IMAGE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/hv/frame_allocator.h"
#include "src/hv/types.h"
#include "src/hv/working_set.h"

namespace potemkin {

struct ReferenceImageConfig {
  std::string name = "linux-reference";
  uint32_t num_pages = 8192;  // 32 MiB guest by default
  uint64_t content_seed = 1;
  // Fraction of pages that are zero in the booted snapshot (free memory). Zero
  // pages still get distinct frames so that sharing accounting is conservative.
  double zero_page_fraction = 0.4;
  // Profile shape for the working sets recorded against this image.
  WorkingSetProfileConfig working_set;
};

// Snapshot of non-memory state that flash cloning must also copy (tiny).
struct DeviceSnapshot {
  uint64_t vcpu_context_words = 64;
  uint64_t nic_state_bytes = 256;
  uint64_t block_state_bytes = 512;
};

// One page replaced by an image refresh; `bytes` (≤ kPageSize) land at the
// start of the page, the remainder zero-fills.
struct ImagePatch {
  Gpfn gpfn = 0;
  std::vector<uint8_t> bytes;
};

// Identifies an image generation; 0 is the boot-time snapshot.
using ImageGeneration = uint32_t;

class ReferenceImage {
 public:
  // Builds generation 0 by "booting": allocates one frame per guest page from
  // `allocator` and fills deterministic contents. Each live generation holds one
  // reference to each of its frames.
  ReferenceImage(FrameAllocator* allocator, const ReferenceImageConfig& config);
  ~ReferenceImage();
  ReferenceImage(const ReferenceImage&) = delete;
  ReferenceImage& operator=(const ReferenceImage&) = delete;

  const std::string& name() const { return config_.name; }
  uint32_t num_pages() const { return config_.num_pages; }
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(config_.num_pages) * kPageSize;
  }
  // Frame backing `gpfn` in the newest generation (the binding every new clone
  // gets).
  FrameId FrameForPage(Gpfn gpfn) const;
  // Frame backing `gpfn` in a specific (still-live) generation.
  FrameId FrameForPage(ImageGeneration generation, Gpfn gpfn) const;
  // All frames of a live generation, indexed by gpfn — the flash-clone run-map
  // path feeds this straight to AddressSpace::MapSharedCowRun.
  std::span<const FrameId> GenerationFrames(ImageGeneration generation) const;

  const DeviceSnapshot& devices() const { return devices_; }
  FrameAllocator* allocator() const { return allocator_; }

  // ---- Generations ----

  ImageGeneration current_generation() const {
    return static_cast<ImageGeneration>(generations_.size() - 1);
  }
  // Generations still holding frames (the newest plus any pinned ancestors).
  size_t live_generations() const;

  // Derives a new generation from the newest one: unpatched pages share the
  // parent's frames (one extra reference each, no copy), patched pages get
  // fresh frames with the given bytes. Returns false (image unchanged) if the
  // host cannot back the patched pages. A parent generation with no pinned
  // clones releases its frames immediately; refcounts keep shared frames live.
  bool Refresh(std::span<const ImagePatch> patches);

  // Clone lifetime pinning. A clone pins the generation it binds at creation
  // and unpins at recycle; a non-newest generation with zero pins releases its
  // frame references (shared frames survive through newer generations' refs).
  void PinGeneration(ImageGeneration generation);
  void UnpinGeneration(ImageGeneration generation);
  uint32_t pins(ImageGeneration generation) const;

  // ---- Working-set profiles ----

  // The profile for an attack class (creating it on first use, shaped by
  // config().working_set). Sessions record into and predictions read from the
  // same object, keyed by whatever taxonomy the farm uses (image profile
  // index, worm strain id, ...).
  WorkingSetProfile& ProfileForClass(uint32_t attack_class);
  const WorkingSetProfile* FindProfile(uint32_t attack_class) const;
  size_t profile_count() const { return profiles_.size(); }

  // Regenerates the expected content of one generation-0 page (for
  // verification in tests).
  static std::vector<uint8_t> ExpectedPageContent(const ReferenceImageConfig& config,
                                                  Gpfn gpfn);

  bool ok() const { return ok_; }

 private:
  struct Generation {
    std::vector<FrameId> frames;  // empty once retired
    uint32_t pin_count = 0;
    bool retired = false;  // frames released (never the newest generation)
  };

  // Releases `gen`'s frame references if it is non-newest and unpinned.
  void MaybeRetire(ImageGeneration gen);
  const Generation& LiveGeneration(ImageGeneration gen) const;

  FrameAllocator* allocator_;
  ReferenceImageConfig config_;
  DeviceSnapshot devices_;
  std::vector<Generation> generations_;
  std::map<uint32_t, WorkingSetProfile> profiles_;
  bool ok_ = false;
};

}  // namespace potemkin

#endif  // SRC_HV_REFERENCE_IMAGE_H_
