// Reference images: frozen snapshots of a booted guest that flash clones map
// copy-on-write. The paper boots a VM once per host, snapshots it, and serves all
// clones from that snapshot; we synthesize the snapshot's memory contents
// deterministically from a seed (a mix of zero pages, code-like pages and data-like
// pages, with realistic proportions) so tests can verify clones observe exactly the
// image's bytes.
#ifndef SRC_HV_REFERENCE_IMAGE_H_
#define SRC_HV_REFERENCE_IMAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/hv/frame_allocator.h"
#include "src/hv/types.h"

namespace potemkin {

struct ReferenceImageConfig {
  std::string name = "linux-reference";
  uint32_t num_pages = 8192;  // 32 MiB guest by default
  uint64_t content_seed = 1;
  // Fraction of pages that are zero in the booted snapshot (free memory). Zero
  // pages still get distinct frames so that sharing accounting is conservative.
  double zero_page_fraction = 0.4;
};

// Snapshot of non-memory state that flash cloning must also copy (tiny).
struct DeviceSnapshot {
  uint64_t vcpu_context_words = 64;
  uint64_t nic_state_bytes = 256;
  uint64_t block_state_bytes = 512;
};

class ReferenceImage {
 public:
  // Builds the image by "booting": allocates one frame per guest page from
  // `allocator` and fills deterministic contents. The image holds one reference to
  // each frame for its lifetime.
  ReferenceImage(FrameAllocator* allocator, const ReferenceImageConfig& config);
  ~ReferenceImage();
  ReferenceImage(const ReferenceImage&) = delete;
  ReferenceImage& operator=(const ReferenceImage&) = delete;

  const std::string& name() const { return config_.name; }
  uint32_t num_pages() const { return config_.num_pages; }
  uint64_t size_bytes() const {
    return static_cast<uint64_t>(config_.num_pages) * kPageSize;
  }
  FrameId FrameForPage(Gpfn gpfn) const;
  const DeviceSnapshot& devices() const { return devices_; }
  FrameAllocator* allocator() const { return allocator_; }

  // Regenerates the expected content of one page (for verification in tests).
  static std::vector<uint8_t> ExpectedPageContent(const ReferenceImageConfig& config,
                                                  Gpfn gpfn);

  bool ok() const { return ok_; }

 private:
  FrameAllocator* allocator_;
  ReferenceImageConfig config_;
  DeviceSnapshot devices_;
  std::vector<FrameId> frames_;
  bool ok_ = false;
};

}  // namespace potemkin

#endif  // SRC_HV_REFERENCE_IMAGE_H_
