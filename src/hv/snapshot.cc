#include "src/hv/snapshot.h"

#include <cstdio>
#include <cstring>

#include "src/base/log.h"

namespace potemkin {

namespace {

constexpr char kMagic[8] = {'P', 'K', 'S', 'N', '1', 0, 0, 0};

void PutU32(std::FILE* f, uint32_t v) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  std::fwrite(buf, 1, 4, f);
}

void PutU64(std::FILE* f, uint64_t v) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>(v >> (8 * i));
  }
  std::fwrite(buf, 1, 8, f);
}

bool GetU32(std::FILE* f, uint32_t* v) {
  uint8_t buf[4];
  if (std::fread(buf, 1, 4, f) != 4) {
    return false;
  }
  *v = 0;
  for (int i = 3; i >= 0; --i) {
    *v = (*v << 8) | buf[i];
  }
  return true;
}

bool GetU64(std::FILE* f, uint64_t* v) {
  uint8_t buf[8];
  if (std::fread(buf, 1, 8, f) != 8) {
    return false;
  }
  *v = 0;
  for (int i = 7; i >= 0; --i) {
    *v = (*v << 8) | buf[i];
  }
  return true;
}

}  // namespace

VmSnapshot VmSnapshot::Capture(const VirtualMachine& vm, TimePoint now) {
  VmSnapshot snapshot;
  snapshot.meta_.vm = vm.id();
  snapshot.meta_.name = vm.name();
  snapshot.meta_.ip = vm.ip().value();
  snapshot.meta_.taken_at_ns = now.nanos();
  snapshot.meta_.num_pages = vm.memory().num_pages();
  snapshot.meta_.infected = vm.infected();

  const AddressSpace& memory = vm.memory();
  memory.ForEachPrivatePage([&](Gpfn gpfn, FrameId frame) {
    (void)frame;
    std::vector<uint8_t> content(kPageSize);
    memory.ReadGuest(static_cast<uint64_t>(gpfn) * kPageSize,
                     std::span(content.data(), content.size()));
    snapshot.pages_.emplace(gpfn, std::move(content));
  });
  vm.disk().ForEachOverlayBlock([&](uint64_t block, const std::vector<uint8_t>& data) {
    snapshot.blocks_.emplace(block, data);
  });
  return snapshot;
}

const std::vector<uint8_t>* VmSnapshot::PageContent(Gpfn gpfn) const {
  auto it = pages_.find(gpfn);
  return it == pages_.end() ? nullptr : &it->second;
}

uint64_t VmSnapshot::SerializedSizeBytes() const {
  return 16 + 64 + meta_.name.size() + pages_.size() * (4 + kPageSize) +
         blocks_.size() * (8 + kDiskBlockSize);
}

bool VmSnapshot::RestoreInto(VirtualMachine* vm) const {
  if (vm == nullptr || vm->memory().num_pages() != meta_.num_pages) {
    return false;
  }
  for (const auto& [gpfn, content] : pages_) {
    const auto result =
        vm->memory().WriteGuest(static_cast<uint64_t>(gpfn) * kPageSize,
                                std::span(content.data(), content.size()));
    if (result == MemAccessResult::kOutOfMemory) {
      return false;
    }
  }
  for (const auto& [block, data] : blocks_) {
    if (!vm->disk().WriteBlock(block, std::span(data.data(), data.size()))) {
      return false;
    }
  }
  vm->set_infected(meta_.infected);
  return true;
}

bool VmSnapshot::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    PK_ERROR << "cannot write snapshot: " << path;
    return false;
  }
  std::fwrite(kMagic, 1, 8, f);
  PutU64(f, meta_.vm);
  PutU32(f, meta_.ip);
  PutU64(f, static_cast<uint64_t>(meta_.taken_at_ns));
  PutU32(f, meta_.num_pages);
  PutU32(f, meta_.infected ? 1 : 0);
  PutU32(f, static_cast<uint32_t>(meta_.name.size()));
  std::fwrite(meta_.name.data(), 1, meta_.name.size(), f);
  PutU32(f, static_cast<uint32_t>(pages_.size()));
  for (const auto& [gpfn, content] : pages_) {
    PutU32(f, gpfn);
    std::fwrite(content.data(), 1, kPageSize, f);
  }
  PutU32(f, static_cast<uint32_t>(blocks_.size()));
  for (const auto& [block, data] : blocks_) {
    PutU64(f, block);
    std::fwrite(data.data(), 1, kDiskBlockSize, f);
  }
  std::fclose(f);
  return true;
}

std::optional<VmSnapshot> VmSnapshot::ReadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  char magic[8];
  if (std::fread(magic, 1, 8, f) != 8 || std::memcmp(magic, kMagic, 8) != 0) {
    std::fclose(f);
    return std::nullopt;
  }
  VmSnapshot snapshot;
  uint64_t vm_id = 0;
  uint64_t taken = 0;
  uint32_t ip = 0;
  uint32_t num_pages = 0;
  uint32_t infected = 0;
  uint32_t name_len = 0;
  if (!GetU64(f, &vm_id) || !GetU32(f, &ip) || !GetU64(f, &taken) ||
      !GetU32(f, &num_pages) || !GetU32(f, &infected) || !GetU32(f, &name_len) ||
      name_len > 4096) {
    std::fclose(f);
    return std::nullopt;
  }
  snapshot.meta_.vm = vm_id;
  snapshot.meta_.ip = ip;
  snapshot.meta_.taken_at_ns = static_cast<int64_t>(taken);
  snapshot.meta_.num_pages = num_pages;
  snapshot.meta_.infected = infected != 0;
  snapshot.meta_.name.resize(name_len);
  if (name_len > 0 && std::fread(snapshot.meta_.name.data(), 1, name_len, f) != name_len) {
    std::fclose(f);
    return std::nullopt;
  }
  uint32_t page_count = 0;
  if (!GetU32(f, &page_count)) {
    std::fclose(f);
    return std::nullopt;
  }
  for (uint32_t i = 0; i < page_count; ++i) {
    uint32_t gpfn = 0;
    std::vector<uint8_t> content(kPageSize);
    if (!GetU32(f, &gpfn) ||
        std::fread(content.data(), 1, kPageSize, f) != kPageSize) {
      std::fclose(f);
      return std::nullopt;
    }
    snapshot.pages_.emplace(gpfn, std::move(content));
  }
  uint32_t block_count = 0;
  if (!GetU32(f, &block_count)) {
    std::fclose(f);
    return std::nullopt;
  }
  for (uint32_t i = 0; i < block_count; ++i) {
    uint64_t block = 0;
    std::vector<uint8_t> data(kDiskBlockSize);
    if (!GetU64(f, &block) ||
        std::fread(data.data(), 1, kDiskBlockSize, f) != kDiskBlockSize) {
      std::fclose(f);
      return std::nullopt;
    }
    snapshot.blocks_.emplace(block, std::move(data));
  }
  std::fclose(f);
  return snapshot;
}

}  // namespace potemkin
