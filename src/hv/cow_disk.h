// Copy-on-write virtual disks.
//
// The paper gives every flash clone a copy-on-write view of a reference disk image
// so that disk state, like memory, costs only the delta a clone actually writes.
// `ReferenceDisk` synthesizes block contents deterministically from a seed;
// `CowDisk` overlays private blocks on top.
#ifndef SRC_HV_COW_DISK_H_
#define SRC_HV_COW_DISK_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace potemkin {

inline constexpr size_t kDiskBlockSize = 4096;

class ReferenceDisk {
 public:
  ReferenceDisk(uint64_t num_blocks, uint64_t content_seed);

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t size_bytes() const { return num_blocks_ * kDiskBlockSize; }

  // Fills `out` (kDiskBlockSize bytes) with the block's deterministic content.
  void ReadBlock(uint64_t block, std::span<uint8_t> out) const;

 private:
  uint64_t num_blocks_;
  uint64_t content_seed_;
};

class CowDisk {
 public:
  explicit CowDisk(const ReferenceDisk* base);

  uint64_t num_blocks() const { return base_->num_blocks(); }

  // Reads through the overlay (private block if written, else base content).
  bool ReadBlock(uint64_t block, std::span<uint8_t> out) const;
  // Writes always land in the overlay. Returns false for out-of-range blocks.
  bool WriteBlock(uint64_t block, std::span<const uint8_t> data);
  // Read-modify-write of a byte range within one block.
  bool WriteBytes(uint64_t block, size_t offset, std::span<const uint8_t> data);

  // The clone's disk delta.
  uint64_t overlay_blocks() const { return overlay_.size(); }
  uint64_t overlay_bytes() const { return overlay_.size() * kDiskBlockSize; }
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

  // Iterates the overlay: fn(block_number, bytes). Used by snapshot capture.
  template <typename Fn>
  void ForEachOverlayBlock(Fn&& fn) const {
    for (const auto& [block, data] : overlay_) {
      fn(block, data);
    }
  }

 private:
  const ReferenceDisk* base_;
  std::unordered_map<uint64_t, std::vector<uint8_t>> overlay_;
  mutable uint64_t reads_ = 0;  // mutable: reads are logically const
  uint64_t writes_ = 0;
};

}  // namespace potemkin

#endif  // SRC_HV_COW_DISK_H_
