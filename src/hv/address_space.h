// Guest pseudo-physical address spaces with copy-on-write mappings.
//
// This implements the paper's *delta virtualization*: a flash-cloned VM starts with
// every guest page mapped read-only to the frozen reference image's machine frames.
// The first guest write to such a page takes a CoW fault: a private frame is
// allocated, the contents copied, and the mapping flipped to writable. The set of
// private frames is the VM's "delta" — the only per-VM memory cost.
//
// Faults resolve one page at a time (`WriteGuest`/`TouchPages`) or as a run
// (`FaultRange`): the run path classifies the whole range in one scan, takes a
// single all-or-nothing allocator reservation for every CoW break and zero
// fill, and amortises the share/delta bookkeeping across the run. The same
// machinery serves working-set prefetch (`PrefetchRange`), which materialises
// pages *speculatively* and tags them so the first real guest write counts as
// a prediction hit.
#ifndef SRC_HV_ADDRESS_SPACE_H_
#define SRC_HV_ADDRESS_SPACE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/hv/frame_allocator.h"
#include "src/hv/types.h"

namespace potemkin {

enum class MemAccessResult {
  kOk,
  kCowBreak,        // write succeeded after breaking a CoW share
  kOutOfMemory,     // CoW break failed: host has no free frames
  kBadAddress,      // access outside the guest address space
};

struct AddressSpaceStats {
  uint64_t cow_faults = 0;         // writes that broke a share
  uint64_t zero_fills = 0;         // writes that materialized an unbacked page
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t failed_cow_breaks = 0;  // out-of-memory CoW faults
  uint64_t batch_faults = 0;       // FaultRange/PrefetchRange invocations
  uint64_t prefetched_pages = 0;   // pages materialised speculatively
  uint64_t prefetch_hits = 0;      // prefetched pages later written by the guest
};

class AddressSpace {
 public:
  // An address space with `num_pages` guest pages, all initially unmapped (reads
  // see zeros; first write allocates a private zero frame).
  AddressSpace(FrameAllocator* allocator, uint32_t num_pages);
  ~AddressSpace();
  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  uint32_t num_pages() const { return static_cast<uint32_t>(ptes_.size()); }
  uint64_t size_bytes() const { return static_cast<uint64_t>(num_pages()) * kPageSize; }

  // Maps `frame` at `gpfn` as a read-only CoW share; takes a reference.
  void MapSharedCow(Gpfn gpfn, FrameId frame);
  // Flash-clone fast path: maps pages [first_gpfn, first_gpfn + frames.size())
  // as CoW shares of frames[i] in one pass. Pages must be unmapped (this is the
  // initial image binding, not a remap); the share count is adjusted once for
  // the whole run.
  void MapSharedCowRun(Gpfn first_gpfn, std::span<const FrameId> frames);
  // Maps `frame` at `gpfn` as private/writable; takes ownership of one reference.
  void MapPrivateOwned(Gpfn gpfn, FrameId frame);
  void Unmap(Gpfn gpfn);

  // Guest memory access by byte address; may span pages.
  MemAccessResult WriteGuest(uint64_t gpaddr, std::span<const uint8_t> bytes);
  MemAccessResult ReadGuest(uint64_t gpaddr, std::span<uint8_t> out) const;

  // Touches (dirties) one word in each page of [first_gpfn, first_gpfn+count),
  // modelling a guest working set; stops early on OOM.
  MemAccessResult TouchPages(Gpfn first_gpfn, uint32_t count);

  // Batched equivalent of TouchPages: resolves every pending fault in the run
  // via FaultRange (one allocator reservation), then writes the same per-page
  // markers. All-or-nothing on OOM — either the whole run materialises or no
  // page does.
  MemAccessResult TouchPagesBatched(Gpfn first_gpfn, uint32_t count);

  // Resolves all pending faults (unmapped or CoW-shared pages) in
  // [first_gpfn, first_gpfn+count) in one pass: one scan to classify, one
  // all-or-nothing allocator reservation (batch clone + batch zero-fill), and
  // bookkeeping amortised over the run. Already-private pages are untouched.
  // On kOutOfMemory nothing in the range changed.
  MemAccessResult FaultRange(Gpfn first_gpfn, uint32_t count);

  // FaultRange for the working-set predictor: pages it materialises are tagged
  // as prefetched (counted in stats().prefetched_pages); the first real guest
  // write to such a page clears the tag and counts a prefetch hit. Pages left
  // tagged at teardown were mispredictions.
  MemAccessResult PrefetchRange(Gpfn first_gpfn, uint32_t count);

  bool IsMapped(Gpfn gpfn) const;
  bool IsCowShared(Gpfn gpfn) const;
  FrameId FrameAt(Gpfn gpfn) const;

  // Number of pages whose frame is private to this address space (the delta).
  uint32_t private_pages() const { return private_pages_; }
  // Number of pages still sharing the reference image's frames.
  uint32_t shared_pages() const { return shared_pages_; }
  uint64_t private_bytes() const {
    return static_cast<uint64_t>(private_pages_) * kPageSize;
  }

  const AddressSpaceStats& stats() const { return stats_; }

  // Prefetched pages the guest never wrote (so far): the predictor's misses.
  uint64_t prefetch_unused() const {
    return stats_.prefetched_pages - stats_.prefetch_hits;
  }

  // Arms first-materialisation order recording: every page that transitions to
  // private (zero fill, CoW break, single or batched) appends its gpfn to
  // touch_order(). Off by default — recording is only paid for by VMs whose
  // sessions feed a working-set profile.
  void EnableTouchOrderRecording() { record_touch_order_ = true; }
  bool touch_order_recording() const { return record_touch_order_; }
  // Gpfns in the order they first became private. Prefetched pages are
  // excluded — the profile must reflect what the guest actually touched, not
  // what a previous profile predicted, or mispredictions self-reinforce.
  const std::vector<Gpfn>& touch_order() const { return touch_order_; }

  // Iterates every private (non-CoW) mapping: fn(gpfn, frame). Used by snapshot
  // capture and the page deduplicator's full-scan mode.
  template <typename Fn>
  void ForEachPrivatePage(Fn&& fn) const {
    for (Gpfn gpfn = 0; gpfn < ptes_.size(); ++gpfn) {
      if (ptes_[gpfn].present && !ptes_[gpfn].cow) {
        fn(gpfn, ptes_[gpfn].frame);
      }
    }
  }

  // Consumes the set of private pages written since the last drain, in first-dirty
  // order: fn(gpfn, frame). Pages unmapped or converted since they were dirtied are
  // skipped. Tracking is only armed on kStoreBytes hosts (where page contents — and
  // thus content dedup — exist); on metadata-only hosts this visits nothing.
  template <typename Fn>
  void DrainDirtyPages(Fn&& fn) {
    for (const Gpfn gpfn : dirty_pages_) {
      Pte& pte = ptes_[gpfn];
      if (!pte.dirty) {
        continue;  // unmapped/converted since dirtied
      }
      pte.dirty = false;
      if (pte.present && !pte.cow) {
        fn(gpfn, pte.frame);
      }
    }
    dirty_pages_.clear();
  }

  // Re-marks every private page dirty (full-scan dedup mode).
  void MarkAllPrivateDirty();

  size_t dirty_page_count() const { return dirty_pages_.size(); }

  // Replaces the private mapping at `gpfn` with a CoW share of `frame` (used by
  // the deduplicator after proving contents identical). The old private frame is
  // released; `frame` gains a reference.
  void ConvertPrivateToSharedCow(Gpfn gpfn, FrameId frame);

  // Releases every mapping (refcounts drop; private frames free immediately).
  void ReleaseAll();

 private:
  struct Pte {
    FrameId frame = kInvalidFrame;
    bool present = false;
    bool cow = false;  // present but read-only shared; write must break the share
    bool dirty = false;  // written since the last dedup drain (kStoreBytes only)
    bool prefetched = false;  // speculatively materialised, no guest write yet
  };

  // Ensures the page at `gpfn` is privately writable; returns false on OOM.
  bool MakeWritable(Gpfn gpfn, MemAccessResult* result);

  // Shared implementation of FaultRange/PrefetchRange.
  MemAccessResult FaultRangeInternal(Gpfn first_gpfn, uint32_t count,
                                     bool prefetch);

  void MarkDirty(Gpfn gpfn) {
    Pte& pte = ptes_[gpfn];
    if (!pte.dirty) {
      pte.dirty = true;
      dirty_pages_.push_back(gpfn);
    }
  }

  void RecordTouch(Gpfn gpfn) {
    if (record_touch_order_) {
      touch_order_.push_back(gpfn);
    }
  }

  FrameAllocator* allocator_;
  std::vector<Pte> ptes_;
  std::vector<Gpfn> dirty_pages_;  // queue for DrainDirtyPages; deduped via Pte::dirty
  std::vector<Gpfn> touch_order_;  // first-materialisation order (when armed)
  // Scratch for FaultRangeInternal, kept across calls so a steady stream of
  // batch faults never allocates.
  std::vector<Gpfn> scratch_cow_gpfns_;
  std::vector<FrameId> scratch_cow_src_;
  std::vector<FrameId> scratch_cow_new_;
  std::vector<Gpfn> scratch_zf_gpfns_;
  std::vector<FrameId> scratch_zf_new_;
  uint32_t private_pages_ = 0;
  uint32_t shared_pages_ = 0;
  bool track_dirty_ = false;  // only kStoreBytes hosts pay for dirty tracking
  bool record_touch_order_ = false;
  mutable AddressSpaceStats stats_;  // mutable: reads are logically const
};

}  // namespace potemkin

#endif  // SRC_HV_ADDRESS_SPACE_H_
