#include "src/hv/latency_model.h"

namespace potemkin {

const char* ClonePhaseName(ClonePhase phase) {
  switch (phase) {
    case ClonePhase::kControlPlaneRpc:
      return "control-plane RPC";
    case ClonePhase::kDomainCreate:
      return "domain create";
    case ClonePhase::kMemoryMapSetup:
      return "CoW memory map";
    case ClonePhase::kDeviceAttach:
      return "device attach";
    case ClonePhase::kNetworkConfig:
      return "network config";
    case ClonePhase::kGuestResume:
      return "guest resume";
    case ClonePhase::kNumPhases:
      break;
  }
  return "?";
}

Duration CloneLatencyModel::PhaseCost(ClonePhase phase, uint32_t image_pages) const {
  switch (phase) {
    case ClonePhase::kControlPlaneRpc:
      return control_plane_rpc;
    case ClonePhase::kDomainCreate:
      return domain_create;
    case ClonePhase::kMemoryMapSetup:
      return memory_map_fixed + memory_map_per_page * static_cast<double>(image_pages);
    case ClonePhase::kDeviceAttach:
      return device_attach;
    case ClonePhase::kNetworkConfig:
      return network_config;
    case ClonePhase::kGuestResume:
      return guest_resume;
    case ClonePhase::kNumPhases:
      break;
  }
  return Duration::Zero();
}

Duration CloneLatencyModel::FlashCloneTotal(uint32_t image_pages) const {
  Duration total;
  for (int p = 0; p < static_cast<int>(ClonePhase::kNumPhases); ++p) {
    total += PhaseCost(static_cast<ClonePhase>(p), image_pages);
  }
  return total;
}

Duration CloneLatencyModel::FullCopyTotal(uint32_t image_pages) const {
  return FlashCloneTotal(image_pages) +
         full_copy_per_page * static_cast<double>(image_pages);
}

CloneLatencyModel CloneLatencyModel::Optimized() {
  CloneLatencyModel m;
  m.control_plane_rpc = Duration::Millis(1);
  m.domain_create = Duration::Millis(9);
  m.memory_map_fixed = Duration::Millis(2);
  m.memory_map_per_page = Duration::Nanos(900);
  m.device_attach = Duration::Millis(12);
  m.network_config = Duration::Millis(8);
  m.guest_resume = Duration::Millis(3);
  m.domain_destroy = Duration::Millis(5);
  return m;
}

}  // namespace potemkin
