#include "src/hv/frame_allocator.h"

#include <algorithm>
#include <cstring>

#include "src/base/log.h"
#include "src/hv/dedup_index.h"

namespace potemkin {

namespace {
// Canonical page for frames that were never materialized (zero-fill-on-demand).
constexpr uint8_t kZeroPage[kPageSize] = {};
}  // namespace

FrameAllocator::FrameAllocator(uint64_t capacity_frames, ContentMode mode)
    : mode_(mode), capacity_frames_(capacity_frames) {}

FrameAllocator::~FrameAllocator() {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
}

void FrameAllocator::ExportMetrics(MetricRegistry* registry,
                                   const std::string& prefix) {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
  export_registry_ = registry;
  if (registry == nullptr) {
    denied_counter_ = Counter();
    batch_pages_hist_ = LatencyHistogram();
    return;
  }
  denied_counter_ = registry->RegisterCounter("hv.frames.denied", "count");
  batch_pages_hist_ = registry->RegisterLatency("hv.fault.batch_pages", "pages");
  registry->RegisterProbe(this, prefix + ".used_frames", "frames", [this] {
    return static_cast<double>(used_frames_);
  });
  registry->RegisterProbe(this, prefix + ".peak_used_frames", "frames", [this] {
    return static_cast<double>(peak_used_frames_);
  });
  registry->RegisterProbe(this, prefix + ".capacity_frames", "frames", [this] {
    return static_cast<double>(capacity_frames_);
  });
  registry->RegisterProbe(this, prefix + ".cow_copies", "count", [this] {
    return static_cast<double>(total_copies_);
  });
  registry->RegisterProbe(this, prefix + ".denied_requests", "count", [this] {
    return static_cast<double>(denied_requests_);
  });
}

void FrameAllocator::CountDenied() {
  ++denied_requests_;
  denied_counter_.Inc();
}

FrameId FrameAllocator::TakeSlot() {
  FrameId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<FrameId>(frames_.size());
    frames_.emplace_back();
  }
  Frame& frame = frames_[id];
  frame.refcount = 1;
  frame.data.reset();  // zero-fill-on-demand
  return id;
}

FrameId FrameAllocator::AllocateZeroed() {
  if (used_frames_ >= capacity_frames_) {
    CountDenied();
    return kInvalidFrame;
  }
  const FrameId id = TakeSlot();
  ++used_frames_;
  ++total_allocations_;
  peak_used_frames_ = std::max(peak_used_frames_, used_frames_);
  return id;
}

FrameId FrameAllocator::CloneFrame(FrameId src) {
  PK_CHECK(src < frames_.size() && frames_[src].refcount > 0) << "clone of dead frame";
  const FrameId id = AllocateZeroed();
  if (id == kInvalidFrame) {
    return kInvalidFrame;
  }
  ++total_copies_;
  if (mode_ == ContentMode::kStoreBytes && frames_[src].data != nullptr) {
    Frame& dst = frames_[id];
    dst.data = std::make_unique<uint8_t[]>(kPageSize);
    std::memcpy(dst.data.get(), frames_[src].data.get(), kPageSize);
  }
  return id;
}

FrameAllocStatus FrameAllocator::AllocateBatch(uint32_t count, FrameId* out) {
  if (count == 0) {
    return FrameAllocStatus::kOk;
  }
  if (!CanAllocate(count)) {
    CountDenied();
    return FrameAllocStatus::kDenied;
  }
  for (uint32_t i = 0; i < count; ++i) {
    out[i] = TakeSlot();
  }
  used_frames_ += count;
  total_allocations_ += count;
  peak_used_frames_ = std::max(peak_used_frames_, used_frames_);
  batch_pages_hist_.Record(count);
  return FrameAllocStatus::kOk;
}

FrameAllocStatus FrameAllocator::CloneFrameBatch(std::span<const FrameId> src,
                                                 FrameId* out) {
  const uint32_t count = static_cast<uint32_t>(src.size());
  if (count == 0) {
    return FrameAllocStatus::kOk;
  }
  for (FrameId s : src) {
    PK_CHECK(s < frames_.size() && frames_[s].refcount > 0)
        << "batch clone of dead frame";
  }
  if (!CanAllocate(count)) {
    CountDenied();
    return FrameAllocStatus::kDenied;
  }
  if (mode_ == ContentMode::kMetadataOnly) {
    // Accounting-only hosts (the clone-density scale mode): the whole batch is
    // pure slot bookkeeping, no buffers to fill.
    for (uint32_t i = 0; i < count; ++i) {
      out[i] = TakeSlot();
    }
  } else {
    for (uint32_t i = 0; i < count; ++i) {
      const FrameId id = TakeSlot();
      out[i] = id;
      // frames_ may have grown in TakeSlot(); re-resolve src after it.
      const Frame& from = frames_[src[i]];
      if (from.data != nullptr) {
        Frame& dst = frames_[id];
        if (!buffer_pool_.empty()) {
          dst.data = std::move(buffer_pool_.back());
          buffer_pool_.pop_back();
        } else {
          dst.data = std::make_unique<uint8_t[]>(kPageSize);
        }
        std::memcpy(dst.data.get(), from.data.get(), kPageSize);
      }
    }
  }
  used_frames_ += count;
  total_allocations_ += count;
  total_copies_ += count;
  peak_used_frames_ = std::max(peak_used_frames_, used_frames_);
  batch_pages_hist_.Record(count);
  return FrameAllocStatus::kOk;
}

void FrameAllocator::Ref(FrameId frame) {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "ref dead frame";
  ++frames_[frame].refcount;
}

void FrameAllocator::RefN(FrameId frame, uint32_t count) {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "ref dead frame";
  frames_[frame].refcount += count;
}

void FrameAllocator::ReleaseData(Frame& frame) {
  if (frame.data != nullptr && buffer_pool_.size() < kBufferPoolCap) {
    buffer_pool_.push_back(std::move(frame.data));
  }
  frame.data.reset();
}

void FrameAllocator::Unref(FrameId frame) {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "unref dead frame";
  if (--frames_[frame].refcount == 0) {
    if (dedup_index_ != nullptr) {
      dedup_index_->OnFrameFreed(frame);
    }
    ReleaseData(frames_[frame]);
    free_list_.push_back(frame);
    PK_CHECK(used_frames_ > 0);
    --used_frames_;
  }
}

void FrameAllocator::UnrefBatch(std::span<const FrameId> frames) {
  for (FrameId f : frames) {
    Unref(f);
  }
}

uint32_t FrameAllocator::RefCount(FrameId frame) const {
  PK_CHECK(frame < frames_.size()) << "refcount of unknown frame";
  return frames_[frame].refcount;
}

uint8_t* FrameAllocator::MaterializeData(Frame& frame) {
  if (frame.data == nullptr) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(frame.data.get(), 0, kPageSize);
  }
  return frame.data.get();
}

void FrameAllocator::Write(FrameId frame, size_t offset,
                           std::span<const uint8_t> bytes) {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "write dead frame";
  PK_CHECK(offset + bytes.size() <= kPageSize) << "write past page end";
  if (mode_ == ContentMode::kMetadataOnly) {
    return;
  }
  if (dedup_index_ != nullptr) {
    dedup_index_->OnFrameWritten(frame);
  }
  uint8_t* data = MaterializeData(frames_[frame]);
  std::memcpy(data + offset, bytes.data(), bytes.size());
}

const uint8_t* FrameAllocator::PeekData(FrameId frame) const {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "peek dead frame";
  if (mode_ == ContentMode::kMetadataOnly) {
    return nullptr;
  }
  const Frame& f = frames_[frame];
  return f.data == nullptr ? kZeroPage : f.data.get();
}

void FrameAllocator::Read(FrameId frame, size_t offset, std::span<uint8_t> out) const {
  PK_CHECK(frame < frames_.size() && frames_[frame].refcount > 0) << "read dead frame";
  PK_CHECK(offset + out.size() <= kPageSize) << "read past page end";
  const Frame& f = frames_[frame];
  if (mode_ == ContentMode::kMetadataOnly || f.data == nullptr) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), f.data.get() + offset, out.size());
}

}  // namespace potemkin
