// A virtual machine (domain) as the hypervisor substrate sees it: an address
// space, a CoW disk, a vNIC and a lifecycle state machine. Guest *behaviour* (what
// runs inside) is layered on by src/guest.
#ifndef SRC_HV_VM_H_
#define SRC_HV_VM_H_

#include <functional>
#include <memory>
#include <string>

#include "src/base/time_types.h"
#include "src/hv/address_space.h"
#include "src/hv/cow_disk.h"
#include "src/hv/reference_image.h"
#include "src/hv/types.h"
#include "src/net/ipv4.h"
#include "src/net/packet.h"

namespace potemkin {

enum class VmState {
  kCloning,   // being flash-cloned; cannot receive packets yet
  kRunning,   // live and bound to an IP
  kPaused,    // suspended (e.g. held for forensics)
  kRetired,   // torn down; resources released
};

const char* VmStateName(VmState state);

class VirtualMachine {
 public:
  // Transmit hook: the host wires this to the farm fabric.
  using TxHandler = std::function<void(VirtualMachine&, Packet)>;

  VirtualMachine(VmId id, std::string name, FrameAllocator* allocator,
                 uint32_t num_pages, const ReferenceDisk* disk_base);
  ~VirtualMachine() = default;
  VirtualMachine(const VirtualMachine&) = delete;
  VirtualMachine& operator=(const VirtualMachine&) = delete;

  VmId id() const { return id_; }
  const std::string& name() const { return name_; }
  VmState state() const { return state_; }
  void set_state(VmState state) { state_ = state; }

  AddressSpace& memory() { return memory_; }
  const AddressSpace& memory() const { return memory_; }
  CowDisk& disk() { return disk_; }
  const CowDisk& disk() const { return disk_; }

  // Late binding: the IP address is assigned at clone time, not boot time.
  void BindAddress(Ipv4Address ip, MacAddress mac) {
    ip_ = ip;
    mac_ = mac;
  }
  Ipv4Address ip() const { return ip_; }
  MacAddress mac() const { return mac_; }

  void set_tx_handler(TxHandler handler) { tx_ = std::move(handler); }
  // Sends a packet out of the vNIC (to the farm fabric / gateway).
  void Transmit(Packet packet);
  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_received() const { return packets_received_; }
  void CountReceived() { ++packets_received_; }

  void set_created_at(TimePoint t) { created_at_ = t; }
  TimePoint created_at() const { return created_at_; }
  void set_last_activity(TimePoint t) { last_activity_ = t; }
  TimePoint last_activity() const { return last_activity_; }

  void set_infected(bool infected) { infected_ = infected; }
  bool infected() const { return infected_; }

  // Total per-VM memory cost: private pages plus fixed domain overhead.
  uint64_t FootprintBytes() const;

 private:
  VmId id_;
  std::string name_;
  VmState state_ = VmState::kCloning;
  AddressSpace memory_;
  CowDisk disk_;
  Ipv4Address ip_;
  MacAddress mac_;
  TxHandler tx_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_received_ = 0;
  TimePoint created_at_;
  TimePoint last_activity_;
  bool infected_ = false;
};

}  // namespace potemkin

#endif  // SRC_HV_VM_H_
