// A physical honeyfarm server: machine memory, registered reference images, and
// the mechanics of creating VMs from them (flash clone with CoW sharing, full-copy
// clone, cold boot). Timing/scheduling of these operations lives in
// src/hv/clone_engine.h; this class is the instantaneous state manipulation.
#ifndef SRC_HV_PHYSICAL_HOST_H_
#define SRC_HV_PHYSICAL_HOST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/hv/cow_disk.h"
#include "src/hv/dedup_index.h"
#include "src/hv/frame_allocator.h"
#include "src/hv/latency_model.h"
#include "src/hv/reference_image.h"
#include "src/hv/types.h"
#include "src/hv/vm.h"

namespace potemkin {

enum class CloneKind {
  kFlash,     // delta virtualization: CoW-map the image (the paper's design)
  kFullCopy,  // copy every image page (baseline)
  kColdBoot,  // boot from scratch (baseline; costs full pages and boot time)
};

const char* CloneKindName(CloneKind kind);

// Per-clone knobs for the predictive memory path. The zero value reproduces
// the pre-prediction behavior exactly (no prefetch, no recording) — every
// legacy call site keeps its semantics.
struct CloneOptions {
  // Prefetch: materialise the working-set profile's predicted first pages in
  // batched faults at clone time, so the session's early faults hit private
  // pages instead of breaking CoW shares one at a time.
  bool use_working_set = false;
  // Prediction depth when use_working_set is set.
  uint32_t prefetch_pages = 64;
  // Feed this clone's first-touch page order back into the image's profile at
  // destroy time (the sessions future clones are predicted from).
  bool record_working_set = false;
  // Profile key (worm strain, service, image profile index — whatever taxonomy
  // the farm uses) for both prediction and recording.
  uint32_t attack_class = 0;
};

struct PhysicalHostConfig {
  HostId id = 0;
  std::string name = "host0";
  uint64_t memory_mb = 2048;
  ContentMode content_mode = ContentMode::kStoreBytes;
  // Fixed per-domain overhead charged against host memory (descriptor, vcpu and
  // shadow state), in frames. 256 frames = 1 MiB.
  uint64_t domain_overhead_frames = 256;
  // Admission control: refuse new clones when free memory would drop below this
  // many frames (headroom for existing VMs' future CoW deltas).
  uint64_t admission_reserve_frames = 1024;
  // Pressure-driven recycling: with a nonzero high watermark, the host reports
  // memory pressure once committed frames exceed high_watermark × capacity, and
  // PressureVictims() nominates the most-idle clones for reclaim until usage
  // falls back under low_watermark × capacity. 0 disables (legacy behavior:
  // allocations simply start failing at the admission reserve).
  double pressure_high_watermark = 0.0;
  double pressure_low_watermark = 0.0;  // defaults to high watermark when 0
};

// Cumulative deduplication accounting across every pass run on a host, kept by
// the host so the farm's dedup hit rate survives individual DedupResult values.
struct DedupTotals {
  uint64_t passes = 0;
  uint64_t pages_scanned = 0;
  uint64_t pages_merged = 0;
  uint64_t frames_freed = 0;
  // Fraction of scanned pages that merged — the "dedup hit rate" health signal.
  double HitRate() const {
    return pages_scanned == 0
               ? 0.0
               : static_cast<double>(pages_merged) /
                     static_cast<double>(pages_scanned);
  }
};

// Cumulative working-set prefetch accounting (live VMs plus retired ones),
// the predictor's farm-visible scorecard.
struct PrefetchTotals {
  uint64_t sessions = 0;          // clones created with prediction enabled
  uint64_t prefetched_pages = 0;  // pages materialised speculatively
  uint64_t hits = 0;              // prefetched pages the guest then wrote
  double HitRate() const {
    return prefetched_pages == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(prefetched_pages);
  }
};

class PhysicalHost {
 public:
  explicit PhysicalHost(const PhysicalHostConfig& config);
  ~PhysicalHost();

  // Registers cold-path probes for this host (live VMs, private pages, memory
  // via the frame allocator, dedup totals, prefetch totals) under `prefix`
  // (e.g. "host0"). Probes are keyed by this host and removed on destruction.
  void ExportMetrics(MetricRegistry* registry, const std::string& prefix);

  HostId id() const { return config_.id; }
  const std::string& name() const { return config_.name; }
  FrameAllocator& allocator() { return allocator_; }
  const FrameAllocator& allocator() const { return allocator_; }

  // Content-hash index the incremental deduplicator keeps warm between passes;
  // wired into the allocator's write/free hooks on kStoreBytes hosts.
  DedupIndex& dedup_index() { return dedup_index_; }
  const DedupIndex& dedup_index() const { return dedup_index_; }

  // Boots a reference image (and its reference disk) on this host.
  ImageId RegisterImage(const ReferenceImageConfig& config, uint64_t disk_blocks = 1024);
  const ReferenceImage* image(ImageId id) const;
  ReferenceImage* mutable_image(ImageId id);
  size_t image_count() const { return images_.size(); }

  // True if a clone of `image` with kind `kind` passes admission control.
  bool CanAdmit(ImageId image, CloneKind kind) const;

  // Creates a VM from the image. Returns nullptr on failure (admission/OOM), in
  // which case all partial state is rolled back. The VM starts in kCloning.
  // The clone binds — and pins — the image's newest generation; `options`
  // selects the predictive-memory behavior (the default reproduces the
  // pre-prediction path exactly).
  VirtualMachine* CreateClone(ImageId image, CloneKind kind, const std::string& name);
  VirtualMachine* CreateClone(ImageId image, CloneKind kind, const std::string& name,
                              const CloneOptions& options);

  // Tears a VM down and releases all of its frames; unpins its image
  // generation and, when the clone recorded its working set, folds the
  // session's touch order into the image's profile.
  bool DestroyVm(VmId id);

  VirtualMachine* FindVm(VmId id);
  size_t live_vm_count() const { return vms_.size(); }
  uint64_t peak_live_vms() const { return peak_live_vms_; }
  uint64_t total_clones_created() const { return total_created_; }
  uint64_t total_clone_failures() const { return total_failures_; }
  uint64_t total_destroyed() const { return total_destroyed_; }
  // Generation a live VM is pinned to (0 when unknown).
  ImageGeneration VmGeneration(VmId id) const;

  // Aggregate private (delta) pages across live VMs.
  uint64_t TotalPrivatePages() const;

  // ---- Memory pressure ----

  // True when pressure recycling is configured and committed frames exceed the
  // high watermark. The recycler should reclaim until this clears.
  bool UnderMemoryPressure() const;
  // Frames that must be released to fall back under the low watermark
  // (0 when not under pressure).
  uint64_t FramesAboveLowWatermark() const;
  // The most-idle live VMs (oldest last_activity first), candidates for
  // pressure reclaim. Only kRunning VMs are nominated — clones still
  // materialising and VMs already quiescing toward teardown are skipped.
  std::vector<VmId> PressureVictims(size_t max) const;

  // Called by DeduplicatePages after each pass.
  void AccumulateDedup(uint64_t pages_scanned, uint64_t pages_merged,
                       uint64_t frames_freed) {
    ++dedup_totals_.passes;
    dedup_totals_.pages_scanned += pages_scanned;
    dedup_totals_.pages_merged += pages_merged;
    dedup_totals_.frames_freed += frames_freed;
  }
  const DedupTotals& dedup_totals() const { return dedup_totals_; }

  // Prefetch scorecard across retired *and* live clones (live VM stats are
  // folded in at call time, so a mid-session hit is visible immediately).
  PrefetchTotals prefetch_totals() const;

  // Iteration support for telemetry.
  template <typename Fn>
  void ForEachVm(Fn&& fn) {
    for (auto& [id, record] : vms_) {
      fn(*record.vm);
    }
  }

 private:
  struct VmRecord {
    std::unique_ptr<VirtualMachine> vm;
    std::vector<FrameId> overhead_frames;
    ImageId image = 0;
    ImageGeneration generation = 0;
    uint32_t attack_class = 0;
    bool record_working_set = false;
  };

  PhysicalHostConfig config_;
  FrameAllocator allocator_;
  // Declared after allocator_ and before the frame holders below, so teardown
  // (VMs, disks, images) still has a live index for its frame-free hooks.
  DedupIndex dedup_index_;
  std::vector<std::unique_ptr<ReferenceImage>> images_;
  std::vector<std::unique_ptr<ReferenceDisk>> disks_;
  std::unordered_map<VmId, VmRecord> vms_;
  // VM ids carry the host id in the upper 32 bits and a per-host counter
  // below, so they stay farm-unique (gateway, worm runtimes and telemetry key
  // state by VmId farm-wide) while remaining deterministic per farm instance —
  // two identical runs in one process mint identical ids.
  uint64_t next_vm_seq_ = 1;
  uint64_t peak_live_vms_ = 0;
  uint64_t total_created_ = 0;
  uint64_t total_failures_ = 0;
  uint64_t total_destroyed_ = 0;
  DedupTotals dedup_totals_;
  PrefetchTotals retired_prefetch_;  // accumulated at DestroyVm
  MetricRegistry* export_registry_ = nullptr;
};

}  // namespace potemkin

#endif  // SRC_HV_PHYSICAL_HOST_H_
