// Per-attack-class working-set profiles for predictive page prefetch.
//
// PAPERS.md's VM streaming work observes that clones of the same service
// touch nearly the same pages in nearly the same order in their first seconds
// of life: the kernel fault path, the service's code pages, its heap arena.
// A WorkingSetProfile aggregates the first-touch page order of completed
// sessions (one per attack class — a worm strain hammers different pages than
// an ssh scanner) into a ranked prediction, so the clone engine can
// pre-materialise the predicted first-N pages in one batched fault instead of
// taking N demand faults on the session's critical path.
//
// Ranking blends position and recurrence: a page touched first by every
// session outranks a page touched late by one. Older sessions decay
// exponentially, so a profile tracks a drifting working set (a patched image
// generation shifts code pages) without a reset.
#ifndef SRC_HV_WORKING_SET_H_
#define SRC_HV_WORKING_SET_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/hv/types.h"

namespace potemkin {

struct WorkingSetProfileConfig {
  // Pages per session that contribute to the profile (and the most a
  // prediction can return). The paper's clones diverge by well under 1k pages
  // over a whole session; the *early* working set is far smaller.
  uint32_t max_pages = 256;
  // Sessions recorded before the profile serves predictions. Below this the
  // predictor abstains (returns empty) rather than guessing from noise.
  uint32_t min_sessions = 1;
  // Per-session decay applied to accumulated scores; 1.0 never forgets.
  double decay = 0.75;
};

class WorkingSetProfile {
 public:
  WorkingSetProfile() = default;
  explicit WorkingSetProfile(const WorkingSetProfileConfig& config)
      : config_(config) {}

  // Folds one completed session's first-touch page order (earliest first)
  // into the profile. Only the first max_pages entries contribute.
  void RecordSession(std::span<const Gpfn> touch_order);

  // The predicted early working set, best-ranked first, at most
  // min(n, max_pages) entries. Empty until min_sessions sessions recorded.
  // Deterministic: ties break toward the lower gpfn.
  std::vector<Gpfn> PredictFirst(uint32_t n) const;

  uint64_t sessions() const { return sessions_; }
  size_t tracked_pages() const { return scores_.size(); }
  const WorkingSetProfileConfig& config() const { return config_; }

 private:
  WorkingSetProfileConfig config_;
  uint64_t sessions_ = 0;
  // gpfn -> decayed positional score. Scores only grow on touch and decay
  // multiplicatively, so the map is pruned of vanishing entries on record.
  std::unordered_map<Gpfn, double> scores_;
};

}  // namespace potemkin

#endif  // SRC_HV_WORKING_SET_H_
