#include "src/hv/physical_host.h"

#include <algorithm>

#include "src/base/log.h"
#include "src/base/strings.h"

namespace potemkin {

const char* CloneKindName(CloneKind kind) {
  switch (kind) {
    case CloneKind::kFlash:
      return "flash";
    case CloneKind::kFullCopy:
      return "full-copy";
    case CloneKind::kColdBoot:
      return "cold-boot";
  }
  return "?";
}

PhysicalHost::PhysicalHost(const PhysicalHostConfig& config)
    : config_(config),
      allocator_(config.memory_mb * (1 << 20) / kPageSize, config.content_mode) {
  if (config.content_mode == ContentMode::kStoreBytes) {
    allocator_.set_dedup_index(&dedup_index_);
  }
  if (config_.pressure_high_watermark > 0.0 &&
      config_.pressure_low_watermark <= 0.0) {
    config_.pressure_low_watermark = config_.pressure_high_watermark;
  }
}

PhysicalHost::~PhysicalHost() {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
}

void PhysicalHost::ExportMetrics(MetricRegistry* registry,
                                 const std::string& prefix) {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
  export_registry_ = registry;
  allocator_.ExportMetrics(registry, prefix + ".mem");
  if (registry == nullptr) {
    return;
  }
  registry->RegisterProbe(this, prefix + ".vms.live", "vms", [this] {
    return static_cast<double>(vms_.size());
  });
  registry->RegisterProbe(this, prefix + ".vms.peak", "vms", [this] {
    return static_cast<double>(peak_live_vms_);
  });
  registry->RegisterProbe(this, prefix + ".pages.private", "pages", [this] {
    return static_cast<double>(TotalPrivatePages());
  });
  registry->RegisterProbe(this, prefix + ".dedup.passes", "count", [this] {
    return static_cast<double>(dedup_totals_.passes);
  });
  registry->RegisterProbe(this, prefix + ".dedup.pages_merged", "pages", [this] {
    return static_cast<double>(dedup_totals_.pages_merged);
  });
  registry->RegisterProbe(this, prefix + ".dedup.frames_freed", "frames", [this] {
    return static_cast<double>(dedup_totals_.frames_freed);
  });
  registry->RegisterProbe(this, prefix + ".dedup.hit_rate", "ratio",
                          [this] { return dedup_totals_.HitRate(); });
  registry->RegisterProbe(this, prefix + ".prefetch.pages", "pages", [this] {
    return static_cast<double>(prefetch_totals().prefetched_pages);
  });
  registry->RegisterProbe(this, prefix + ".prefetch.hits", "pages", [this] {
    return static_cast<double>(prefetch_totals().hits);
  });
  registry->RegisterProbe(this, prefix + ".prefetch.hit_rate", "ratio",
                          [this] { return prefetch_totals().HitRate(); });
  registry->RegisterProbe(this, prefix + ".pressure.active", "bool", [this] {
    return UnderMemoryPressure() ? 1.0 : 0.0;
  });
}

ImageId PhysicalHost::RegisterImage(const ReferenceImageConfig& config,
                                    uint64_t disk_blocks) {
  auto image = std::make_unique<ReferenceImage>(&allocator_, config);
  PK_CHECK(image->ok()) << "host " << config_.name << " cannot boot reference image";
  images_.push_back(std::move(image));
  disks_.push_back(std::make_unique<ReferenceDisk>(disk_blocks, config.content_seed));
  return static_cast<ImageId>(images_.size() - 1);
}

const ReferenceImage* PhysicalHost::image(ImageId id) const {
  return id < images_.size() ? images_[id].get() : nullptr;
}

ReferenceImage* PhysicalHost::mutable_image(ImageId id) {
  return id < images_.size() ? images_[id].get() : nullptr;
}

bool PhysicalHost::CanAdmit(ImageId image_id, CloneKind kind) const {
  if (image_id >= images_.size()) {
    return false;
  }
  uint64_t needed = config_.domain_overhead_frames + config_.admission_reserve_frames;
  if (kind != CloneKind::kFlash) {
    needed += images_[image_id]->num_pages();
  }
  return allocator_.CanAllocate(needed);
}

VirtualMachine* PhysicalHost::CreateClone(ImageId image_id, CloneKind kind,
                                          const std::string& name) {
  return CreateClone(image_id, kind, name, CloneOptions{});
}

VirtualMachine* PhysicalHost::CreateClone(ImageId image_id, CloneKind kind,
                                          const std::string& name,
                                          const CloneOptions& options) {
  if (!CanAdmit(image_id, kind)) {
    ++total_failures_;
    return nullptr;
  }
  ReferenceImage& img = *images_[image_id];
  const ReferenceDisk* disk = disks_[image_id].get();
  const ImageGeneration generation = img.current_generation();

  VmRecord record;
  record.image = image_id;
  record.generation = generation;
  record.attack_class = options.attack_class;
  record.record_working_set = options.record_working_set;
  const VmId id = (static_cast<VmId>(config_.id) << 32) | next_vm_seq_++;
  record.vm = std::make_unique<VirtualMachine>(id, name, &allocator_, img.num_pages(),
                                               disk);

  // Fixed domain overhead.
  record.overhead_frames.reserve(config_.domain_overhead_frames);
  for (uint64_t i = 0; i < config_.domain_overhead_frames; ++i) {
    const FrameId frame = allocator_.AllocateZeroed();
    if (frame == kInvalidFrame) {
      for (FrameId f : record.overhead_frames) {
        allocator_.Unref(f);
      }
      ++total_failures_;
      return nullptr;
    }
    record.overhead_frames.push_back(frame);
  }

  AddressSpace& mem = record.vm->memory();
  if (options.record_working_set) {
    mem.EnableTouchOrderRecording();
  }
  bool oom = false;
  switch (kind) {
    case CloneKind::kFlash:
      // One run-map over the whole generation: per-page Ref still happens, but
      // PTE setup and share accounting are amortised across the image.
      mem.MapSharedCowRun(0, img.GenerationFrames(generation));
      break;
    case CloneKind::kFullCopy:
    case CloneKind::kColdBoot: {
      for (Gpfn gpfn = 0; gpfn < img.num_pages() && !oom; ++gpfn) {
        const FrameId copy = allocator_.CloneFrame(img.FrameForPage(generation, gpfn));
        if (copy == kInvalidFrame) {
          oom = true;
          break;
        }
        mem.MapPrivateOwned(gpfn, copy);
      }
      break;
    }
  }
  if (oom) {
    mem.ReleaseAll();
    for (FrameId f : record.overhead_frames) {
      allocator_.Unref(f);
    }
    ++total_failures_;
    return nullptr;
  }

  if (options.use_working_set) {
    ++retired_prefetch_.sessions;
    if (const WorkingSetProfile* profile = img.FindProfile(options.attack_class)) {
      // Coalesce the prediction into contiguous runs and materialise each with
      // one batched fault. Prefetch is opportunistic: a denied run simply
      // leaves the remaining pages to demand faulting.
      std::vector<Gpfn> predicted = profile->PredictFirst(options.prefetch_pages);
      std::sort(predicted.begin(), predicted.end());
      size_t i = 0;
      while (i < predicted.size()) {
        size_t j = i + 1;
        while (j < predicted.size() && predicted[j] == predicted[j - 1] + 1) {
          ++j;
        }
        const auto run_len = static_cast<uint32_t>(j - i);
        if (mem.PrefetchRange(predicted[i], run_len) ==
            MemAccessResult::kOutOfMemory) {
          break;
        }
        i = j;
      }
    }
  }

  img.PinGeneration(generation);
  VirtualMachine* vm = record.vm.get();
  vms_.emplace(id, std::move(record));
  ++total_created_;
  peak_live_vms_ = std::max<uint64_t>(peak_live_vms_, vms_.size());
  return vm;
}

bool PhysicalHost::DestroyVm(VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return false;
  }
  VmRecord& record = it->second;
  const AddressSpaceStats& stats = record.vm->memory().stats();
  retired_prefetch_.prefetched_pages += stats.prefetched_pages;
  retired_prefetch_.hits += stats.prefetch_hits;
  if (record.record_working_set) {
    const std::vector<Gpfn>& order = record.vm->memory().touch_order();
    if (!order.empty() && record.image < images_.size()) {
      images_[record.image]
          ->ProfileForClass(record.attack_class)
          .RecordSession(std::span(order.data(), order.size()));
    }
  }
  record.vm->set_state(VmState::kRetired);
  record.vm->memory().ReleaseAll();
  for (FrameId f : record.overhead_frames) {
    allocator_.Unref(f);
  }
  if (record.image < images_.size()) {
    images_[record.image]->UnpinGeneration(record.generation);
  }
  vms_.erase(it);
  ++total_destroyed_;
  return true;
}

VirtualMachine* PhysicalHost::FindVm(VmId id) {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.vm.get();
}

ImageGeneration PhysicalHost::VmGeneration(VmId id) const {
  auto it = vms_.find(id);
  return it == vms_.end() ? 0 : it->second.generation;
}

uint64_t PhysicalHost::TotalPrivatePages() const {
  uint64_t total = 0;
  for (const auto& [id, record] : vms_) {
    total += record.vm->memory().private_pages();
  }
  return total;
}

PrefetchTotals PhysicalHost::prefetch_totals() const {
  PrefetchTotals totals = retired_prefetch_;
  for (const auto& [id, record] : vms_) {
    const AddressSpaceStats& stats = record.vm->memory().stats();
    totals.prefetched_pages += stats.prefetched_pages;
    totals.hits += stats.prefetch_hits;
  }
  return totals;
}

bool PhysicalHost::UnderMemoryPressure() const {
  if (config_.pressure_high_watermark <= 0.0) {
    return false;
  }
  const auto threshold = static_cast<uint64_t>(
      config_.pressure_high_watermark *
      static_cast<double>(allocator_.capacity_frames()));
  return allocator_.used_frames() > threshold;
}

uint64_t PhysicalHost::FramesAboveLowWatermark() const {
  if (!UnderMemoryPressure()) {
    return 0;
  }
  const auto floor = static_cast<uint64_t>(
      config_.pressure_low_watermark *
      static_cast<double>(allocator_.capacity_frames()));
  const uint64_t used = allocator_.used_frames();
  return used > floor ? used - floor : 0;
}

std::vector<VmId> PhysicalHost::PressureVictims(size_t max) const {
  std::vector<std::pair<int64_t, VmId>> candidates;
  candidates.reserve(vms_.size());
  for (const auto& [id, record] : vms_) {
    if (record.vm->state() != VmState::kRunning) {
      continue;  // never reclaim a clone still materialising or already quiescing
    }
    candidates.emplace_back(record.vm->last_activity().nanos(), id);
  }
  std::sort(candidates.begin(), candidates.end());
  if (candidates.size() > max) {
    candidates.resize(max);
  }
  std::vector<VmId> victims;
  victims.reserve(candidates.size());
  for (const auto& [activity, id] : candidates) {
    victims.push_back(id);
  }
  return victims;
}

}  // namespace potemkin
