#include "src/hv/physical_host.h"

#include "src/base/log.h"
#include "src/base/strings.h"

namespace potemkin {

namespace {
// VM ids are globally unique across hosts (the gateway, worm runtimes and
// telemetry key state by VmId farm-wide).
VmId g_next_vm_id = 1;
}  // namespace

const char* CloneKindName(CloneKind kind) {
  switch (kind) {
    case CloneKind::kFlash:
      return "flash";
    case CloneKind::kFullCopy:
      return "full-copy";
    case CloneKind::kColdBoot:
      return "cold-boot";
  }
  return "?";
}

PhysicalHost::PhysicalHost(const PhysicalHostConfig& config)
    : config_(config),
      allocator_(config.memory_mb * (1 << 20) / kPageSize, config.content_mode) {
  if (config.content_mode == ContentMode::kStoreBytes) {
    allocator_.set_dedup_index(&dedup_index_);
  }
}

PhysicalHost::~PhysicalHost() {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
}

void PhysicalHost::ExportMetrics(MetricRegistry* registry,
                                 const std::string& prefix) {
  if (export_registry_ != nullptr) {
    export_registry_->RemoveProbes(this);
  }
  export_registry_ = registry;
  allocator_.ExportMetrics(registry, prefix + ".mem");
  if (registry == nullptr) {
    return;
  }
  registry->RegisterProbe(this, prefix + ".vms.live", "vms", [this] {
    return static_cast<double>(vms_.size());
  });
  registry->RegisterProbe(this, prefix + ".vms.peak", "vms", [this] {
    return static_cast<double>(peak_live_vms_);
  });
  registry->RegisterProbe(this, prefix + ".pages.private", "pages", [this] {
    return static_cast<double>(TotalPrivatePages());
  });
  registry->RegisterProbe(this, prefix + ".dedup.passes", "count", [this] {
    return static_cast<double>(dedup_totals_.passes);
  });
  registry->RegisterProbe(this, prefix + ".dedup.pages_merged", "pages", [this] {
    return static_cast<double>(dedup_totals_.pages_merged);
  });
  registry->RegisterProbe(this, prefix + ".dedup.frames_freed", "frames", [this] {
    return static_cast<double>(dedup_totals_.frames_freed);
  });
  registry->RegisterProbe(this, prefix + ".dedup.hit_rate", "ratio",
                          [this] { return dedup_totals_.HitRate(); });
}

ImageId PhysicalHost::RegisterImage(const ReferenceImageConfig& config,
                                    uint64_t disk_blocks) {
  auto image = std::make_unique<ReferenceImage>(&allocator_, config);
  PK_CHECK(image->ok()) << "host " << config_.name << " cannot boot reference image";
  images_.push_back(std::move(image));
  disks_.push_back(std::make_unique<ReferenceDisk>(disk_blocks, config.content_seed));
  return static_cast<ImageId>(images_.size() - 1);
}

const ReferenceImage* PhysicalHost::image(ImageId id) const {
  return id < images_.size() ? images_[id].get() : nullptr;
}

bool PhysicalHost::CanAdmit(ImageId image_id, CloneKind kind) const {
  if (image_id >= images_.size()) {
    return false;
  }
  uint64_t needed = config_.domain_overhead_frames + config_.admission_reserve_frames;
  if (kind != CloneKind::kFlash) {
    needed += images_[image_id]->num_pages();
  }
  return allocator_.CanAllocate(needed);
}

VirtualMachine* PhysicalHost::CreateClone(ImageId image_id, CloneKind kind,
                                          const std::string& name) {
  if (!CanAdmit(image_id, kind)) {
    ++total_failures_;
    return nullptr;
  }
  const ReferenceImage& img = *images_[image_id];
  const ReferenceDisk* disk = disks_[image_id].get();

  VmRecord record;
  record.image = image_id;
  const VmId id = g_next_vm_id++;
  record.vm = std::make_unique<VirtualMachine>(id, name, &allocator_, img.num_pages(),
                                               disk);

  // Fixed domain overhead.
  record.overhead_frames.reserve(config_.domain_overhead_frames);
  for (uint64_t i = 0; i < config_.domain_overhead_frames; ++i) {
    const FrameId frame = allocator_.AllocateZeroed();
    if (frame == kInvalidFrame) {
      for (FrameId f : record.overhead_frames) {
        allocator_.Unref(f);
      }
      ++total_failures_;
      return nullptr;
    }
    record.overhead_frames.push_back(frame);
  }

  AddressSpace& mem = record.vm->memory();
  bool oom = false;
  for (Gpfn gpfn = 0; gpfn < img.num_pages() && !oom; ++gpfn) {
    const FrameId src = img.FrameForPage(gpfn);
    switch (kind) {
      case CloneKind::kFlash:
        mem.MapSharedCow(gpfn, src);
        break;
      case CloneKind::kFullCopy:
      case CloneKind::kColdBoot: {
        const FrameId copy = allocator_.CloneFrame(src);
        if (copy == kInvalidFrame) {
          oom = true;
          break;
        }
        mem.MapPrivateOwned(gpfn, copy);
        break;
      }
    }
  }
  if (oom) {
    mem.ReleaseAll();
    for (FrameId f : record.overhead_frames) {
      allocator_.Unref(f);
    }
    ++total_failures_;
    return nullptr;
  }

  VirtualMachine* vm = record.vm.get();
  vms_.emplace(id, std::move(record));
  ++total_created_;
  peak_live_vms_ = std::max<uint64_t>(peak_live_vms_, vms_.size());
  return vm;
}

bool PhysicalHost::DestroyVm(VmId id) {
  auto it = vms_.find(id);
  if (it == vms_.end()) {
    return false;
  }
  it->second.vm->set_state(VmState::kRetired);
  it->second.vm->memory().ReleaseAll();
  for (FrameId f : it->second.overhead_frames) {
    allocator_.Unref(f);
  }
  vms_.erase(it);
  ++total_destroyed_;
  return true;
}

VirtualMachine* PhysicalHost::FindVm(VmId id) {
  auto it = vms_.find(id);
  return it == vms_.end() ? nullptr : it->second.vm.get();
}

uint64_t PhysicalHost::TotalPrivatePages() const {
  uint64_t total = 0;
  for (const auto& [id, record] : vms_) {
    total += record.vm->memory().private_pages();
  }
  return total;
}

}  // namespace potemkin
