// Content-based page deduplication across a host's VMs.
//
// Delta virtualization shares pages that clones *never wrote*; the paper points
// out (as future work) that clones frequently write identical content — zeroed
// buffers, identical kernel structures — which content-based sharing can merge
// back, further raising VM density. This pass scans every private page on a host,
// groups by content hash, verifies byte equality, and rewrites duplicates as
// copy-on-write shares of one canonical frame. Safe by construction: all merged
// mappings become read-only CoW, so a later write simply re-privatizes the page.
//
// Requires a kStoreBytes host (real contents); on metadata-only hosts it is a
// no-op, since there are no bytes to compare.
#ifndef SRC_HV_PAGE_DEDUP_H_
#define SRC_HV_PAGE_DEDUP_H_

#include <cstdint>

#include "src/hv/physical_host.h"

namespace potemkin {

struct DedupResult {
  uint64_t pages_scanned = 0;
  uint64_t pages_merged = 0;   // private mappings rewritten to CoW shares
  uint64_t frames_freed = 0;   // machine frames released by merging
  uint64_t bytes_saved = 0;
  uint64_t hash_collisions = 0;  // equal hash, different bytes (kept separate)
};

// One full deduplication pass over `host`. Idempotent: a second immediate pass
// merges nothing.
DedupResult DeduplicatePages(PhysicalHost& host);

}  // namespace potemkin

#endif  // SRC_HV_PAGE_DEDUP_H_
