// Content-based page deduplication across a host's VMs.
//
// Delta virtualization shares pages that clones *never wrote*; the paper points
// out (as future work) that clones frequently write identical content — zeroed
// buffers, identical kernel structures — which content-based sharing can merge
// back, further raising VM density. This pass groups private pages by content
// hash, verifies byte equality, and rewrites duplicates as copy-on-write shares
// of one canonical frame. Safe by construction: all merged mappings become
// read-only CoW, so a later write simply re-privatizes the page.
//
// Two scan modes share one merge core:
//  - kIncremental (default): only pages dirtied since the previous pass are
//    hashed; everything previously examined is remembered in the host's
//    `DedupIndex`, which the frame allocator keeps consistent across writes and
//    frees. Cost per pass is O(dirty), not O(host memory).
//  - kFullScan: drops the index, re-marks every private page dirty and rescans —
//    the cross-check mode tests run against the incremental path.
//
// Requires a kStoreBytes host (real contents); on metadata-only hosts it is a
// no-op, since there are no bytes to compare.
#ifndef SRC_HV_PAGE_DEDUP_H_
#define SRC_HV_PAGE_DEDUP_H_

#include <cstdint>

#include "src/hv/physical_host.h"

namespace potemkin {

struct DedupResult {
  uint64_t pages_scanned = 0;  // pages hashed this pass (dirty ones, incremental)
  uint64_t pages_merged = 0;   // private mappings rewritten to CoW shares
  uint64_t frames_freed = 0;   // machine frames released by merging
  uint64_t bytes_saved = 0;
  uint64_t hash_collisions = 0;  // equal hash, different bytes (kept separate)
};

enum class DedupMode {
  kIncremental,  // merge only pages dirtied since the last pass
  kFullScan,     // rescan every private page (cross-check mode)
};

// One deduplication pass over `host`. Idempotent: a second immediate pass
// merges nothing.
DedupResult DeduplicatePages(PhysicalHost& host,
                             DedupMode mode = DedupMode::kIncremental);

}  // namespace potemkin

#endif  // SRC_HV_PAGE_DEDUP_H_
