// Attack-session forensics: stitches the event ledger back into per-IP
// causal timelines.
//
// Runs a deterministic replayed attack against a small farm — background
// radiation on a /24, a seeded Slammer-like worm, reflect containment, the SLO
// watchdog armed — then reports what the ledger recorded. Every packet's first
// contact mints a SessionId at the gateway; clone lifecycle, guest
// interaction, containment verdicts and alerts all carry it, so one session is
// one attack's complete story.
//
// Usage:
//   forensics [--session=IP] [--jsonl=PATH] [--chrome=PATH]
//             [--seconds=N] [--seed=N] [--chaos=N]
//
//   (no flags)      per-session summary table, busiest sessions first
//   --session=IP    full first-packet -> clone -> interaction -> containment
//                   timeline for the session first-contacted at farm address IP
//                   (or sourced from IP)
//   --jsonl=PATH    export the whole ledger as JSON Lines
//   --chrome=PATH   export a Chrome trace (one track per session)
//   --chaos=N       fly the replay under the control plane with N seeded
//                   faults; the summary gains a control-plane timeline of
//                   every controller decision and chaos injection
//
// Unknown flags are usage errors (exit 2); --session with an address no
// session touched exits 1.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/ctrl/chaos.h"
#include "src/ctrl/controller.h"
#include "src/malware/radiation.h"
#include "src/obs/event_ledger.h"

namespace potemkin {
namespace {

std::string Ip(uint64_t raw) {
  return Ipv4Address(static_cast<uint32_t>(raw)).ToString();
}

const char* DropReasonName(uint64_t reason) {
  switch (static_cast<LedgerDropReason>(reason)) {
    case LedgerDropReason::kQueueFull: return "queue_full";
    case LedgerDropReason::kNotQueueing: return "not_queueing";
    case LedgerDropReason::kNoCapacity: return "no_capacity";
    case LedgerDropReason::kTtlExpired: return "ttl_expired";
    case LedgerDropReason::kScannerFiltered: return "scanner_filtered";
  }
  return "?";
}

// Human rendering of one record's a/b arguments, per the enum's conventions.
std::string DescribeRecord(Honeyfarm& farm, const EventLedger::Record& r) {
  switch (r.type) {
    case LedgerEvent::kFirstContact:
      return StrFormat("%s -> %s (session minted)", Ip(r.a).c_str(), Ip(r.b).c_str());
    case LedgerEvent::kPacketDelivered:
      return StrFormat("from %s, %llu bytes", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kPacketQueued:
      return StrFormat("from %s, queue depth %llu", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kPacketDropped:
      return StrFormat("from %s: %s", Ip(r.a).c_str(), DropReasonName(r.b));
    case LedgerEvent::kCloneRequested:
    case LedgerEvent::kCloneStarted:
    case LedgerEvent::kCloneFailed:
      return StrFormat("%s on host%llu", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kCloneDone:
      return StrFormat("vm %llu live after %.3f ms",
                       static_cast<unsigned long long>(r.a),
                       static_cast<double>(r.b) / 1e6);
    case LedgerEvent::kGuestRequest:
      return StrFormat("port %llu, %llu payload bytes",
                       static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kGuestResponse:
      return StrFormat("port %llu, %llu bytes",
                       static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kExploit:
      return StrFormat("payload from %s matched vulnerability on port %llu",
                       Ip(r.a).c_str(), static_cast<unsigned long long>(r.b));
    case LedgerEvent::kInfection:
      return StrFormat("%s infected by %s", Ip(r.a).c_str(), Ip(r.b).c_str());
    case LedgerEvent::kScannerFlagged:
      return StrFormat("%s flagged after %llu distinct targets", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kContainmentAllow:
    case LedgerEvent::kContainmentDrop:
    case LedgerEvent::kContainmentRateLimit:
    case LedgerEvent::kContainmentDnsProxy:
    case LedgerEvent::kContainmentBreach:
      return StrFormat("outbound to %s:%llu", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kContainmentReflect:
      return StrFormat("scan of %s folded back to %s", Ip(r.a).c_str(),
                       Ip(r.b).c_str());
    case LedgerEvent::kEgressResponse:
      return StrFormat("to %s, %llu bytes", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kVmRetired:
      return StrFormat("vm %llu (reason %llu)", static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kAlertRaised:
    case LedgerEvent::kAlertCleared: {
      const Watchdog* dog = farm.watchdog();
      const std::string name =
          dog != nullptr && r.a < dog->rule_count() ? dog->rule(r.a).name : "?";
      return StrFormat("%s (observed ~%llu)", name.c_str(),
                       static_cast<unsigned long long>(r.b));
    }
    case LedgerEvent::kLogWarning:
    case LedgerEvent::kLogError:
    case LedgerEvent::kFatal: {
      const char* file = reinterpret_cast<const char*>(static_cast<uintptr_t>(r.a));
      return StrFormat("%s:%llu", file == nullptr ? "?" : file,
                       static_cast<unsigned long long>(r.b));
    }
    case LedgerEvent::kCtrlState:
      return StrFormat("host%llu -> %s", static_cast<unsigned long long>(r.a),
                       BackendStateName(static_cast<BackendState>(r.b)));
    case LedgerEvent::kCtrlDrainBegin:
      return StrFormat("host%llu draining, %llu bindings to move",
                       static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kCtrlDrainEnd:
      return StrFormat("host%llu empty (%s)",
                       static_cast<unsigned long long>(r.a),
                       r.b == 0 ? "all sessions migrated" : "deadline forced");
    case LedgerEvent::kCtrlMigrate:
      return StrFormat("%s rebinding host%llu -> host%llu", Ip(r.a).c_str(),
                       static_cast<unsigned long long>(r.b >> 32),
                       static_cast<unsigned long long>(r.b & 0xffffffffull));
    case LedgerEvent::kCtrlFailover:
      return StrFormat("host%llu failed, %llu bindings invalidated",
                       static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kCtrlRotate:
      return StrFormat("host%llu image rotated to generation %llu",
                       static_cast<unsigned long long>(r.a),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kCtrlScale:
      return StrFormat("%s (target %llu)",
                       ScaleActionName(static_cast<ScaleAction>(r.a)),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kChaosFault:
      return StrFormat("inject %s on target %llu",
                       ChaosFaultName(static_cast<ChaosFault>(r.a)),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kChaosHeal:
      return StrFormat("heal %s on target %llu",
                       ChaosFaultName(static_cast<ChaosFault>(r.a)),
                       static_cast<unsigned long long>(r.b));
    case LedgerEvent::kCount:
      break;
  }
  return "";
}

// The deterministic replayed outbreak every invocation reconstructs. With a
// controller (and optionally a chaos harness) the control plane flies the
// same replay, so its decisions land in the same ledger.
void RunScenario(Honeyfarm& farm, WormRuntime& worm, const Ipv4Prefix& prefix,
                 double seconds, uint64_t seed, Controller* controller,
                 ChaosHarness* harness) {
  farm.AttachWorm(&worm);
  farm.Start();
  farm.StartWatchdog(Duration::Seconds(1));
  if (controller != nullptr) {
    controller->Start();
  }
  if (harness != nullptr) {
    harness->Arm();
  }

  RadiationConfig radiation;
  radiation.telescope = prefix;
  radiation.duration = Duration::Seconds(seconds);
  radiation.mean_pps = 30.0;
  radiation.source_pool = 64;
  radiation.seed = seed;
  farm.ScheduleTrace(RadiationGenerator(radiation).GenerateAll());

  farm.SeedWorm(worm, Ipv4Address(198, 51, 100, 66), prefix.AddressAt(1));
  farm.RunFor(Duration::Seconds(seconds));
}

bool IsControlPlaneEvent(LedgerEvent type) {
  switch (type) {
    case LedgerEvent::kCtrlState:
    case LedgerEvent::kCtrlDrainBegin:
    case LedgerEvent::kCtrlDrainEnd:
    case LedgerEvent::kCtrlMigrate:
    case LedgerEvent::kCtrlFailover:
    case LedgerEvent::kCtrlRotate:
    case LedgerEvent::kCtrlScale:
    case LedgerEvent::kChaosFault:
    case LedgerEvent::kChaosHeal:
      return true;
    default:
      return false;
  }
}

struct SessionSummary {
  SessionId session = kNoSession;
  Ipv4Address source;
  Ipv4Address target;
  int64_t first_ns = 0;
  int64_t last_ns = 0;
  size_t events = 0;
  bool infected = false;
  bool contained = false;  // any containment verdict recorded
};

int PrintSummary(Honeyfarm& farm, const std::vector<EventLedger::Record>& all) {
  std::map<SessionId, SessionSummary> sessions;
  for (const auto& r : all) {
    if (r.session == kNoSession) {
      continue;
    }
    SessionSummary& s = sessions[r.session];
    if (s.events == 0) {
      s.session = r.session;
      s.first_ns = r.time_ns;
    }
    ++s.events;
    s.last_ns = r.time_ns;
    switch (r.type) {
      case LedgerEvent::kFirstContact:
        s.source = Ipv4Address(static_cast<uint32_t>(r.a));
        s.target = Ipv4Address(static_cast<uint32_t>(r.b));
        break;
      case LedgerEvent::kInfection:
        s.infected = true;
        break;
      case LedgerEvent::kContainmentDrop:
      case LedgerEvent::kContainmentReflect:
      case LedgerEvent::kContainmentRateLimit:
        s.contained = true;
        break;
      default:
        break;
    }
  }
  std::vector<SessionSummary> order;
  order.reserve(sessions.size());
  for (const auto& [id, s] : sessions) {
    order.push_back(s);
  }
  std::sort(order.begin(), order.end(),
            [](const SessionSummary& x, const SessionSummary& y) {
              return x.events != y.events ? x.events > y.events
                                          : x.session < y.session;
            });
  Table table({"session", "source", "target", "events", "span", "story"});
  const size_t show = std::min<size_t>(order.size(), 20);
  for (size_t i = 0; i < show; ++i) {
    const SessionSummary& s = order[i];
    std::string story = s.infected ? "INFECTED" : "probed";
    if (s.contained) {
      story += "+contained";
    }
    table.AddRow({StrFormat("%u", s.session), s.source.ToString(),
                  s.target.ToString(), StrFormat("%zu", s.events),
                  StrFormat("%.3fs", static_cast<double>(s.last_ns - s.first_ns) / 1e9),
                  story});
  }
  std::printf("%s", table.ToAscii().c_str());
  // Control-plane decisions are farm-scoped (no session), so they would be
  // invisible in the per-session table — give them their own timeline.
  size_t ctrl_events = 0;
  for (const auto& r : all) {
    ctrl_events += IsControlPlaneEvent(r.type) ? 1 : 0;
  }
  if (ctrl_events > 0) {
    std::printf("\ncontrol plane (%zu events):\n", ctrl_events);
    for (const auto& r : all) {
      if (IsControlPlaneEvent(r.type)) {
        std::printf("  [%10.6fs] %-22s %s\n",
                    static_cast<double>(r.time_ns) / 1e9,
                    LedgerEventName(r.type), DescribeRecord(farm, r).c_str());
      }
    }
  }
  std::printf("%zu sessions (%zu shown), %llu ledger records (%llu evicted)\n",
              order.size(), show,
              static_cast<unsigned long long>(farm.ledger().appended()),
              static_cast<unsigned long long>(farm.ledger().dropped()));
  return 0;
}

int PrintSessionTimeline(Honeyfarm& farm, Ipv4Address ip,
                         const std::vector<EventLedger::Record>& all) {
  // The session whose first contact targeted (or came from) `ip`.
  SessionId session = kNoSession;
  for (const auto& r : all) {
    if (r.type == LedgerEvent::kFirstContact &&
        (r.b == ip.value() || r.a == ip.value())) {
      session = r.session;
      break;
    }
  }
  if (session == kNoSession) {
    std::fprintf(stderr, "forensics: no session touched %s (it may have been "
                 "evicted from the %zu-record ring)\n",
                 ip.ToString().c_str(), farm.ledger().capacity());
    return 1;
  }
  const auto events = farm.ledger().EventsForSession(session);
  std::printf("session %u: %s — %zu events\n", session, ip.ToString().c_str(),
              events.size());
  for (const auto& r : events) {
    std::printf("  [%10.6fs] %-22s %s\n", static_cast<double>(r.time_ns) / 1e9,
                LedgerEventName(r.type), DescribeRecord(farm, r).c_str());
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: forensics [--session=IP] [--jsonl=PATH] [--chrome=PATH] "
               "[--seconds=N] [--seed=N] [--chaos=N]\n");
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  for (const std::string& name : flags.Names()) {
    if (name != "session" && name != "jsonl" && name != "chrome" &&
        name != "seconds" && name != "seed" && name != "chaos") {
      std::fprintf(stderr, "forensics: unknown flag --%s\n", name.c_str());
      PrintUsage();
      return 2;
    }
  }
  const double seconds = flags.GetDouble("seconds", 30.0);
  const uint64_t seed = flags.GetUint("seed", 7);

  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 24);
  HoneyfarmConfig config = MakeDefaultFarmConfig(
      prefix, /*num_hosts=*/2, /*host_memory_mb=*/512, ContentMode::kMetadataOnly);
  config.server_template.image.num_pages = 2048;
  config.server_template.engine.latency = CloneLatencyModel::Optimized();
  config.server_template.engine.control_plane_workers = 2;
  config.gateway.containment.mode = OutboundMode::kReflect;
  // Size the ring for the whole replay so no session's first contact is
  // evicted before the report runs (~48 bytes/record).
  config.ledger_capacity = 1u << 20;
  Honeyfarm farm(config);

  const Ipv4Prefix internet(Ipv4Address(0, 0, 0, 0), 0);
  WormConfig worm_config = SlammerLikeWorm(internet);
  worm_config.scan_rate_pps = 20.0;
  WormRuntime worm(&farm.loop(), worm_config, seed);

  const size_t chaos_faults = flags.GetUint("chaos", 0);
  std::unique_ptr<Controller> controller;
  std::unique_ptr<ChaosHarness> harness;
  if (chaos_faults > 0) {
    ControllerConfig ctrl_config;
    ctrl_config.tick = Duration::Millis(500);
    controller = std::make_unique<Controller>(&farm, ctrl_config);
    ChaosConfig chaos_config;
    chaos_config.seed = seed;
    chaos_config.num_faults = chaos_faults;
    chaos_config.horizon = Duration::Seconds(seconds * 0.8);
    harness = std::make_unique<ChaosHarness>(&farm, controller.get(),
                                             chaos_config);
  }
  RunScenario(farm, worm, prefix, seconds, seed, controller.get(),
              harness.get());

  const std::string jsonl = flags.GetString("jsonl", "");
  if (!jsonl.empty() && !farm.ledger().WriteJsonLines(jsonl)) {
    std::fprintf(stderr, "forensics: cannot write %s\n", jsonl.c_str());
    return 2;
  }
  const std::string chrome = flags.GetString("chrome", "");
  if (!chrome.empty() && !farm.ledger().WriteChromeJson(chrome)) {
    std::fprintf(stderr, "forensics: cannot write %s\n", chrome.c_str());
    return 2;
  }

  const auto all = farm.ledger().Events();
  const std::string session_ip = flags.GetString("session", "");
  if (!session_ip.empty()) {
    const auto ip = Ipv4Address::Parse(session_ip);
    if (!ip) {
      std::fprintf(stderr, "forensics: bad address %s\n", session_ip.c_str());
      PrintUsage();
      return 2;
    }
    return PrintSessionTimeline(farm, *ip, all);
  }
  return PrintSummary(farm, all);
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  return potemkin::Run(argc, argv);
}
