// Dumps a versioned farm HealthSnapshot (see src/obs/health_snapshot.h).
//
// With no file argument it runs a small deterministic demo farm — a /24 across
// two hosts, a burst of first-contact probes, repeat traffic, and an idle-out
// period so the recycler fires — then prints the final snapshot. Given a file,
// it pretty-prints an existing snapshot JSON instead. Exit status:
//
//   0  snapshot produced / parsed and printed
//   2  file unreadable, not a HealthSnapshot, or unsupported schema_version
//
// Usage:
//   metrics_dump [--json] [--prom] [--out=PATH] [snapshot.json]
//
//   --json       emit the raw versioned JSON on stdout instead of the table
//   --prom       emit Prometheus text exposition on stdout instead of the table
//   --out=PATH   additionally write the snapshot JSON to PATH
//
// Unknown flags and unwritable --out paths are usage errors (exit 2) — a typoed
// flag silently running the demo farm once cost someone an afternoon.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/base/strings.h"
#include "src/base/table.h"
#include "src/core/honeyfarm.h"
#include "src/obs/health_snapshot.h"
#include "src/obs/telemetry_exporter.h"

namespace potemkin {
namespace {

std::string FormatValue(double value) {
  if (std::floor(value) == value && std::fabs(value) < 1e15) {
    return StrFormat("%.0f", value);
  }
  return StrFormat("%.6g", value);
}

void PrintSnapshot(const HealthSnapshot& snapshot) {
  std::printf("snapshot: %s  (schema v%d, sequence %llu, t=%.3fs virtual)\n",
              snapshot.source.c_str(), HealthSnapshot::kSchemaVersion,
              static_cast<unsigned long long>(snapshot.sequence),
              static_cast<double>(snapshot.time_ns) / 1e9);
  Table table({"metric", "value", "unit"});
  for (const auto& sample : snapshot.metrics) {
    table.AddRow({sample.name, FormatValue(sample.value), sample.unit});
  }
  std::printf("%s", table.ToAscii().c_str());
  std::printf("%zu metrics\n", snapshot.metrics.size());
}

// ---- Existing-file mode: the same deliberate string scan as bench_diff ----

std::string ReadAll(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

std::string FindStringValue(const std::string& text, const std::string& key,
                            size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return "";
  }
  size_t cursor = text.find('"', text.find(':', at + needle.size()));
  if (cursor == std::string::npos || cursor >= until) {
    return "";
  }
  std::string value;
  for (++cursor; cursor < until && text[cursor] != '"'; ++cursor) {
    value += text[cursor];
  }
  return value;
}

double FindNumberValue(const std::string& text, const std::string& key,
                       size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return std::strtod("nan", nullptr);
  }
  const size_t colon = text.find(':', at + needle.size());
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

int ParseSnapshotFile(const char* path, HealthSnapshot* out) {
  HealthSnapshot& snapshot = *out;
  const std::string text = ReadAll(path);
  if (text.empty()) {
    std::fprintf(stderr, "metrics_dump: cannot read %s\n", path);
    return 2;
  }
  const size_t metrics_at = text.find("\"metrics\"");
  const size_t header = metrics_at == std::string::npos ? text.size() : metrics_at;
  snapshot.source = FindStringValue(text, "snapshot", 0, header);
  if (snapshot.source.empty() || metrics_at == std::string::npos) {
    std::fprintf(stderr, "metrics_dump: %s is not a HealthSnapshot (missing "
                 "\"snapshot\"/\"metrics\")\n", path);
    return 2;
  }
  const double version = FindNumberValue(text, "schema_version", 0, header);
  if (!(version == static_cast<double>(HealthSnapshot::kSchemaVersion))) {
    std::fprintf(stderr,
                 "metrics_dump: %s has unsupported snapshot schema_version %g "
                 "(understood: %d)\n",
                 path, version, HealthSnapshot::kSchemaVersion);
    return 2;
  }
  const double sequence = FindNumberValue(text, "sequence", 0, header);
  const double time_ns = FindNumberValue(text, "time_ns", 0, header);
  snapshot.sequence = sequence == sequence ? static_cast<uint64_t>(sequence) : 0;
  snapshot.time_ns = time_ns == time_ns ? static_cast<int64_t>(time_ns) : 0;
  // Alert rows live between "alerts" and "metrics" (the writer guarantees the
  // order); --prom re-exports them as potemkin_alert_firing series.
  const size_t alerts_at = text.find("\"alerts\"");
  if (alerts_at != std::string::npos && alerts_at < metrics_at) {
    for (size_t open = text.find('{', alerts_at);
         open != std::string::npos && open < metrics_at;
         open = text.find('{', open + 1)) {
      const size_t close = text.find('}', open);
      if (close == std::string::npos || close > metrics_at) {
        break;
      }
      AlertSample alert;
      alert.rule = FindStringValue(text, "alert", open, close);
      alert.metric = FindStringValue(text, "metric", open, close);
      alert.value = FindNumberValue(text, "value", open, close);
      alert.threshold = FindNumberValue(text, "threshold", open, close);
      alert.firing = true;
      if (!alert.rule.empty()) {
        snapshot.alerts.push_back(std::move(alert));
      }
      open = close;
    }
  }
  for (size_t open = text.find('{', metrics_at); open != std::string::npos;
       open = text.find('{', open + 1)) {
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      break;
    }
    MetricRegistry::Sample sample;
    sample.name = FindStringValue(text, "metric", open, close);
    sample.value = FindNumberValue(text, "value", open, close);
    sample.unit = FindStringValue(text, "unit", open, close);
    if (sample.name.empty() || sample.value != sample.value) {
      std::fprintf(stderr, "metrics_dump: malformed metric entry in %s\n", path);
      return 2;
    }
    snapshot.metrics.push_back(std::move(sample));
    open = close;
  }
  return 0;
}

// ---- Demo-farm mode ----

Packet Probe(Ipv4Address src, Ipv4Address dst, uint16_t port) {
  PacketSpec spec;
  spec.src_mac = MacAddress::FromId(0xbad);
  spec.dst_mac = MacAddress::FromId(1);
  spec.src_ip = src;
  spec.dst_ip = dst;
  spec.proto = IpProto::kTcp;
  spec.src_port = 51234;
  spec.dst_port = port;
  spec.tcp_flags = TcpFlags::kSyn;
  return BuildPacket(spec);
}

HealthSnapshot RunDemoFarm() {
  const Ipv4Prefix prefix(Ipv4Address(10, 1, 0, 0), 24);
  HoneyfarmConfig config =
      MakeDefaultFarmConfig(prefix, /*num_hosts=*/2, /*host_memory_mb=*/512,
                            ContentMode::kMetadataOnly);
  config.gateway.recycle.idle_timeout = Duration::Seconds(5);
  config.gateway.recycle.scan_interval = Duration::Seconds(1);

  Honeyfarm farm(config);
  farm.Start();
  farm.StartHealthSnapshots(Duration::Seconds(1));

  // First contacts on eight addresses: eight flash clones.
  for (uint32_t i = 0; i < 8; ++i) {
    farm.InjectInbound(Probe(Ipv4Address(198, 51, 100, static_cast<uint8_t>(10 + i)),
                             prefix.AddressAt(i), 445));
  }
  farm.RunFor(Duration::Seconds(2));
  // Repeat traffic to the now-live bindings: hit-path deliveries.
  for (uint32_t i = 0; i < 8; ++i) {
    farm.InjectInbound(Probe(Ipv4Address(198, 51, 100, static_cast<uint8_t>(10 + i)),
                             prefix.AddressAt(i), 445));
  }
  // Idle out so the recycler retires every VM.
  farm.RunFor(Duration::Seconds(10));
  return farm.health().SampleNow();
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: metrics_dump [--json] [--prom] [--out=PATH] [snapshot.json]\n"
               "  --json       emit raw versioned JSON instead of the table\n"
               "  --prom       emit Prometheus text exposition instead of the table\n"
               "  --out=PATH   additionally write the snapshot JSON to PATH\n");
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  for (const std::string& name : flags.Names()) {
    if (name != "json" && name != "out" && name != "prom") {
      std::fprintf(stderr, "metrics_dump: unknown flag --%s\n", name.c_str());
      PrintUsage();
      return 2;
    }
  }
  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    // Check writability up front: discovering the path is bad only after the
    // demo farm ran (or the input parsed) wastes the work and hides the error.
    std::FILE* probe = std::fopen(out.c_str(), "ab");
    if (probe == nullptr) {
      std::fprintf(stderr, "metrics_dump: cannot write %s\n", out.c_str());
      PrintUsage();
      return 2;
    }
    std::fclose(probe);
  }
  if (!flags.positional().empty()) {
    HealthSnapshot snapshot;
    const int status = ParseSnapshotFile(flags.positional()[0].c_str(), &snapshot);
    if (status == 0) {
      if (flags.GetBool("prom", false)) {
        std::printf("%s", PrometheusTextFor(snapshot).c_str());
      } else {
        PrintSnapshot(snapshot);
      }
    }
    if (status == 0 && !out.empty()) {
      // File mode honors --out too: copy the (validated) snapshot through.
      const std::string text = ReadAll(flags.positional()[0].c_str());
      std::FILE* file = std::fopen(out.c_str(), "wb");
      if (file == nullptr) {
        std::fprintf(stderr, "metrics_dump: cannot write %s\n", out.c_str());
        return 2;
      }
      std::fwrite(text.data(), 1, text.size(), file);
      std::fclose(file);
      std::fprintf(stderr, "metrics_dump: wrote %s\n", out.c_str());
    }
    return status;
  }

  const HealthSnapshot snapshot = RunDemoFarm();
  if (!out.empty()) {
    if (!snapshot.WriteJson(out)) {
      std::fprintf(stderr, "metrics_dump: cannot write %s\n", out.c_str());
      return 2;
    }
    std::fprintf(stderr, "metrics_dump: wrote %s\n", out.c_str());
  }
  if (flags.GetBool("json", false)) {
    std::printf("%s", snapshot.ToJson().c_str());
  } else if (flags.GetBool("prom", false)) {
    std::printf("%s", PrometheusTextFor(snapshot).c_str());
  } else {
    PrintSnapshot(snapshot);
  }
  return 0;
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  return potemkin::Run(argc, argv);
}
