// Normalizes google-benchmark JSON output into the repo's BENCH_<name>.json
// perf-trajectory schema (see bench/report.h). Usage:
//
//   ./build/bench/bench_micro --benchmark_format=json > micro.json
//   ./build/tools/bench_to_json micro.json            # writes BENCH_micro.json
//   ./build/tools/bench_to_json --name=micro < micro.json
//
// Each benchmark entry becomes one metric row: the benchmark's name (slugified)
// with its cpu_time value and time_unit. Benchmarks that report
// items_per_second (SetItemsProcessed) get a second `<slug>_items_per_s` row,
// so throughput ratios between benchmarks with different per-iteration batch
// sizes can be read straight from the report. Aggregate rows
// (mean/median/stddev from --benchmark_repetitions) are kept too — their
// names already carry the suffix. The parser is a deliberate string scan, not a JSON library: the
// benchmark output grammar is fixed and flat enough that scanning for the four
// keys we need is simpler and dependency-free.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/report.h"

namespace potemkin {
namespace {

std::string ReadAll(std::FILE* file) {
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  return text;
}

// Returns the JSON string value following `"key":` at or after `from`, or ""
// if the key does not appear before `until`.
std::string FindStringValue(const std::string& text, const std::string& key,
                            size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return "";
  }
  size_t cursor = text.find('"', text.find(':', at + needle.size()));
  if (cursor == std::string::npos || cursor >= until) {
    return "";
  }
  std::string value;
  for (++cursor; cursor < until && text[cursor] != '"'; ++cursor) {
    value += text[cursor];
  }
  return value;
}

// Returns the numeric value following `"key":` at or after `from`, or NaN.
double FindNumberValue(const std::string& text, const std::string& key,
                       size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return std::strtod("nan", nullptr);
  }
  const size_t colon = text.find(':', at + needle.size());
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

std::string Slugify(const std::string& name) {
  std::string slug;
  for (const char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9')) {
      slug += c;
    } else if (!slug.empty() && slug.back() != '_') {
      slug += '_';
    }
  }
  while (!slug.empty() && slug.back() == '_') {
    slug.pop_back();
  }
  return slug;
}

int Run(int argc, char** argv) {
  std::string report_name = "micro";
  std::string input_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--name=", 7) == 0) {
      report_name = argv[i] + 7;
    } else {
      input_path = argv[i];
    }
  }

  std::FILE* input = stdin;
  if (!input_path.empty()) {
    input = std::fopen(input_path.c_str(), "rb");
    if (input == nullptr) {
      std::fprintf(stderr, "bench_to_json: cannot open %s\n",
                   input_path.c_str());
      return 1;
    }
  }
  const std::string text = ReadAll(input);
  if (input != stdin) {
    std::fclose(input);
  }

  const size_t benchmarks = text.find("\"benchmarks\"");
  if (benchmarks == std::string::npos) {
    std::fprintf(stderr,
                 "bench_to_json: no \"benchmarks\" array in input (expected "
                 "--benchmark_format=json output)\n");
    return 1;
  }

  BenchReport report(report_name);
  size_t entries = 0;
  // Each array element is one flat object; walk them by brace pairs.
  for (size_t open = text.find('{', benchmarks); open != std::string::npos;
       open = text.find('{', open + 1)) {
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      break;
    }
    const std::string name = FindStringValue(text, "name", open, close);
    const double cpu_time = FindNumberValue(text, "cpu_time", open, close);
    if (name.empty() || cpu_time != cpu_time) {
      continue;  // context object or malformed entry
    }
    std::string unit = FindStringValue(text, "time_unit", open, close);
    if (unit.empty()) {
      unit = "ns";
    }
    report.Add(Slugify(name), cpu_time, unit);
    const double items_per_second =
        FindNumberValue(text, "items_per_second", open, close);
    if (items_per_second == items_per_second) {
      report.Add(Slugify(name) + "_items_per_s", items_per_second, "items/s");
    }
    ++entries;
    open = close;
  }
  if (entries == 0) {
    std::fprintf(stderr, "bench_to_json: no benchmark entries found\n");
    return 1;
  }

  const std::string path = report.WriteJson();
  if (path.empty()) {
    std::fprintf(stderr, "bench_to_json: failed to write report\n");
    return 1;
  }
  std::printf("%s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) { return potemkin::Run(argc, argv); }
