// Maintains the per-PR perf trajectory: BENCH_TRAJECTORY.jsonl, an append-only
// JSONL history of every BENCH_<name>.json report across commits.
//
// bench_diff answers "did this run regress against the latest baseline?"; this
// tool answers the question the ROADMAP kept open — "what has this metric done
// across the last N PRs?" — by stamping each report (git SHA, shard topology,
// host threads) into a machine-checkable series and flagging *monotone*
// regressions: a metric that got a little worse in each of the last N entries,
// each step inside bench_diff's single-step threshold, but compounding.
//
// Usage:
//   bench_trajectory [--out=BENCH_TRAJECTORY.jsonl] BENCH_a.json [BENCH_b.json ...]
//   bench_trajectory --check [--last=3] [--tolerance=0.05] [--out=...]
//
// Append mode parses each report and appends one JSONL entry per benchmark,
// skipping reports whose latest trajectory entry already has the same git SHA
// and identical metrics (so re-running CI on one commit does not duplicate
// history). Check mode scans the trajectory: for every benchmark with at
// least --last entries, a metric fails when its value moved strictly in the
// losing direction across each of the last N entries AND the cumulative move
// exceeds --tolerance (fractional). Direction comes from the metric's name
// and unit; wall-clock rows (machine-dependent by definition) and rows with
// no recognizable direction are never checked.
//
// Exit status: 0 ok, 1 monotone regression found (--check), 2 usage/schema
// error. The parser is the same deliberate string scan as bench_diff — the
// schemas are flat and fixed, so scanning beats a JSON dependency.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/base/flags.h"
#include "src/base/json_util.h"

namespace potemkin {
namespace {

constexpr int kTrajectorySchemaVersion = 1;

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;

  bool operator==(const Metric& other) const {
    return name == other.name && value == other.value && unit == other.unit;
  }
};

struct Entry {
  std::string benchmark;
  std::string git_sha;
  double seed = 0.0;
  double shards = 0.0;
  double host_threads = 0.0;
  std::vector<Metric> metrics;
};

std::string ReadAll(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

std::string FindStringValue(const std::string& text, const std::string& key,
                            size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return "";
  }
  size_t cursor = text.find('"', text.find(':', at + needle.size()));
  if (cursor == std::string::npos || cursor >= until) {
    return "";
  }
  std::string value;
  for (++cursor; cursor < until && text[cursor] != '"'; ++cursor) {
    value += text[cursor];
  }
  return value;
}

double FindNumberValue(const std::string& text, const std::string& key,
                       size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return std::nan("");
  }
  const size_t colon = text.find(':', at + needle.size());
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

// ---- BENCH_<name>.json (bench/report.cc schema) ----

bool ParseBenchReport(const char* path, Entry* out) {
  const std::string text = ReadAll(path);
  if (text.empty()) {
    std::fprintf(stderr, "bench_trajectory: cannot read %s\n", path);
    return false;
  }
  const size_t metrics_at = text.find("\"metrics\"");
  if (metrics_at == std::string::npos) {
    std::fprintf(stderr, "bench_trajectory: %s has no \"metrics\" section\n",
                 path);
    return false;
  }
  out->benchmark = FindStringValue(text, "benchmark", 0, metrics_at);
  if (out->benchmark.empty()) {
    std::fprintf(stderr, "bench_trajectory: %s is not a BENCH report (missing "
                 "\"benchmark\")\n", path);
    return false;
  }
  out->git_sha = FindStringValue(text, "git_sha", 0, metrics_at);
  out->seed = FindNumberValue(text, "seed", 0, metrics_at);
  out->shards = FindNumberValue(text, "shards", 0, metrics_at);
  out->host_threads = FindNumberValue(text, "host_threads", 0, metrics_at);
  for (size_t open = text.find('{', metrics_at); open != std::string::npos;
       open = text.find('{', open + 1)) {
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      break;
    }
    Metric metric;
    metric.name = FindStringValue(text, "metric", open, close);
    metric.value = FindNumberValue(text, "value", open, close);
    metric.unit = FindStringValue(text, "unit", open, close);
    if (metric.name.empty() || std::isnan(metric.value)) {
      std::fprintf(stderr, "bench_trajectory: malformed metric entry in %s\n",
                   path);
      return false;
    }
    out->metrics.push_back(std::move(metric));
    open = close;
  }
  if (out->metrics.empty()) {
    std::fprintf(stderr, "bench_trajectory: %s has no metrics\n", path);
    return false;
  }
  return true;
}

// ---- Trajectory JSONL entries ----

std::string RenderEntry(const Entry& entry) {
  std::string out = "{\"trajectory_schema_version\":";
  AppendJsonNumber(out, kTrajectorySchemaVersion);
  out += ",\"benchmark\":";
  AppendJsonString(out, entry.benchmark);
  out += ",\"git_sha\":";
  AppendJsonString(out, entry.git_sha);
  out += ",\"seed\":";
  AppendJsonNumber(out, entry.seed);
  out += ",\"shards\":";
  AppendJsonNumber(out, entry.shards);
  out += ",\"host_threads\":";
  AppendJsonNumber(out, entry.host_threads);
  out += ",\"metrics\":[";
  for (size_t i = 0; i < entry.metrics.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += '[';
    AppendJsonString(out, entry.metrics[i].name);
    out += ',';
    AppendJsonNumber(out, entry.metrics[i].value);
    out += ',';
    AppendJsonString(out, entry.metrics[i].unit);
    out += ']';
  }
  out += "]}";
  return out;
}

// Parses one trajectory JSONL line; the metrics array-of-triples needs a tiny
// cursor walk rather than the keyed scan.
bool ParseEntryLine(const std::string& line, Entry* out) {
  const size_t metrics_at = line.find("\"metrics\"");
  if (metrics_at == std::string::npos) {
    return false;
  }
  out->benchmark = FindStringValue(line, "benchmark", 0, metrics_at);
  out->git_sha = FindStringValue(line, "git_sha", 0, metrics_at);
  out->seed = FindNumberValue(line, "seed", 0, metrics_at);
  out->shards = FindNumberValue(line, "shards", 0, metrics_at);
  out->host_threads = FindNumberValue(line, "host_threads", 0, metrics_at);
  if (out->benchmark.empty()) {
    return false;
  }
  size_t pos = line.find('[', metrics_at);
  if (pos == std::string::npos) {
    return false;
  }
  ++pos;  // inside the outer array
  while (pos < line.size()) {
    while (pos < line.size() && (line[pos] == ',' || line[pos] == ' ')) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] == ']') {
      break;
    }
    if (line[pos] != '[') {
      return false;
    }
    const size_t close = line.find(']', pos);
    if (close == std::string::npos) {
      return false;
    }
    Metric metric;
    // ["name",value,"unit"]
    size_t q1 = line.find('"', pos);
    size_t q2 = line.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos || q2 > close) {
      return false;
    }
    metric.name = line.substr(q1 + 1, q2 - q1 - 1);
    metric.value = std::strtod(line.c_str() + q2 + 2, nullptr);
    size_t q3 = line.find('"', q2 + 2);
    size_t q4 = q3 == std::string::npos ? std::string::npos
                                        : line.find('"', q3 + 1);
    if (q3 != std::string::npos && q4 != std::string::npos && q4 <= close) {
      metric.unit = line.substr(q3 + 1, q4 - q3 - 1);
    }
    out->metrics.push_back(std::move(metric));
    pos = close + 1;
  }
  return !out->metrics.empty();
}

std::vector<Entry> LoadTrajectory(const std::string& path) {
  std::vector<Entry> entries;
  const std::string text = ReadAll(path.c_str());
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) {
      continue;
    }
    Entry entry;
    if (ParseEntryLine(line, &entry)) {
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

// ---- Direction heuristics ----

enum class Direction { kLowerBetter, kHigherBetter, kUnchecked };

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

Direction DirectionOf(const std::string& name, const std::string& unit) {
  // Wall-clock rows measure the runner, not the code; never trend-check them.
  if (Contains(name, "wallclock")) {
    return Direction::kUnchecked;
  }
  if (unit.find("/s") != std::string::npos || Contains(name, "_pps") ||
      Contains(name, "throughput") || Contains(name, "hit_rate") ||
      Contains(name, "per_sec")) {
    return Direction::kHigherBetter;
  }
  if (unit == "ns" || unit == "us" || unit == "ms" || unit == "s" ||
      unit == "mb" || Contains(name, "latency") || Contains(name, "_wait") ||
      Contains(name, "rss") || Contains(name, "_p50") ||
      Contains(name, "_p90") || Contains(name, "_p99") ||
      Contains(name, "_p999")) {
    return Direction::kLowerBetter;
  }
  return Direction::kUnchecked;
}

// ---- Modes ----

int Append(const Flags& flags, const std::string& out_path) {
  std::vector<Entry> history = LoadTrajectory(out_path);
  std::FILE* file = std::fopen(out_path.c_str(), "a");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_trajectory: cannot write %s\n",
                 out_path.c_str());
    return 2;
  }
  size_t appended = 0;
  size_t skipped = 0;
  for (const std::string& input : flags.positional()) {
    Entry entry;
    if (!ParseBenchReport(input.c_str(), &entry)) {
      std::fclose(file);
      return 2;
    }
    // Latest entry for this benchmark: identical SHA + metrics means this
    // report is already in the history (CI re-run on one commit).
    const Entry* latest = nullptr;
    for (const Entry& prior : history) {
      if (prior.benchmark == entry.benchmark) {
        latest = &prior;
      }
    }
    if (latest != nullptr && latest->git_sha == entry.git_sha &&
        latest->metrics == entry.metrics) {
      std::printf("unchanged  %-36s (%s, already recorded)\n",
                  entry.benchmark.c_str(), entry.git_sha.c_str());
      ++skipped;
      continue;
    }
    const std::string line = RenderEntry(entry);
    std::fwrite(line.data(), 1, line.size(), file);
    std::fputc('\n', file);
    std::printf("appended   %-36s (%s, %zu metrics)\n",
                entry.benchmark.c_str(), entry.git_sha.c_str(),
                entry.metrics.size());
    history.push_back(std::move(entry));
    ++appended;
  }
  std::fclose(file);
  std::printf("trajectory: %zu appended, %zu unchanged -> %s\n", appended,
              skipped, out_path.c_str());
  return 0;
}

int Check(const Flags& flags, const std::string& out_path) {
  const size_t last = static_cast<size_t>(flags.GetUint("last", 3));
  const double tolerance = flags.GetDouble("tolerance", 0.05);
  if (last < 2) {
    std::fprintf(stderr, "bench_trajectory: --last must be >= 2\n");
    return 2;
  }
  const std::vector<Entry> history = LoadTrajectory(out_path);
  if (history.empty()) {
    std::fprintf(stderr, "bench_trajectory: %s is empty or unreadable\n",
                 out_path.c_str());
    return 2;
  }
  // Benchmarks in first-seen order.
  std::vector<std::string> benchmarks;
  for (const Entry& entry : history) {
    bool seen = false;
    for (const std::string& name : benchmarks) {
      seen = seen || name == entry.benchmark;
    }
    if (!seen) {
      benchmarks.push_back(entry.benchmark);
    }
  }
  size_t checked = 0;
  size_t failures = 0;
  for (const std::string& benchmark : benchmarks) {
    std::vector<const Entry*> series;
    for (const Entry& entry : history) {
      if (entry.benchmark == benchmark) {
        series.push_back(&entry);
      }
    }
    if (series.size() < last) {
      continue;  // not enough history yet to call a trend
    }
    const std::vector<const Entry*> window(series.end() - last, series.end());
    for (const Metric& metric : window.front()->metrics) {
      const Direction direction = DirectionOf(metric.name, metric.unit);
      if (direction == Direction::kUnchecked) {
        continue;
      }
      std::vector<double> values;
      for (const Entry* entry : window) {
        for (const Metric& m : entry->metrics) {
          if (m.name == metric.name) {
            values.push_back(m.value);
            break;
          }
        }
      }
      if (values.size() != last) {
        continue;  // metric not present across the whole window
      }
      ++checked;
      bool monotone_worse = true;
      for (size_t i = 0; i + 1 < values.size(); ++i) {
        const bool worse = direction == Direction::kLowerBetter
                               ? values[i + 1] > values[i]
                               : values[i + 1] < values[i];
        monotone_worse = monotone_worse && worse;
      }
      if (!monotone_worse) {
        continue;
      }
      const double base = std::fabs(values.front());
      const double cumulative =
          base > 0.0 ? std::fabs(values.back() - values.front()) / base : 1.0;
      if (cumulative <= tolerance) {
        continue;
      }
      ++failures;
      std::printf("REGRESSION %s / %s: %s across last %zu entries "
                  "(%.6g -> %.6g, %+.1f%%)\n",
                  benchmark.c_str(), metric.name.c_str(),
                  direction == Direction::kLowerBetter ? "monotone rise"
                                                       : "monotone fall",
                  last, values.front(), values.back(),
                  100.0 * (values.back() - values.front()) /
                      (base > 0.0 ? base : 1.0));
    }
  }
  if (failures > 0) {
    std::printf("trajectory check: %zu monotone regression(s) across %zu "
                "checked series\n", failures, checked);
    return 1;
  }
  std::printf("trajectory check OK: %zu series checked across %zu "
              "benchmarks, window %zu, tolerance %.0f%%\n",
              checked, benchmarks.size(), last, 100.0 * tolerance);
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: bench_trajectory [--out=BENCH_TRAJECTORY.jsonl] "
               "BENCH_a.json [...]\n"
               "       bench_trajectory --check [--last=3] [--tolerance=0.05] "
               "[--out=...]\n");
}

int Run(int argc, char** argv) {
  const Flags flags = Flags::Parse(argc, argv);
  for (const std::string& name : flags.Names()) {
    if (name != "out" && name != "check" && name != "last" &&
        name != "tolerance") {
      std::fprintf(stderr, "bench_trajectory: unknown flag --%s\n",
                   name.c_str());
      PrintUsage();
      return 2;
    }
  }
  const std::string out_path =
      flags.GetString("out", "BENCH_TRAJECTORY.jsonl");
  if (flags.GetBool("check", false)) {
    if (!flags.positional().empty()) {
      std::fprintf(stderr,
                   "bench_trajectory: --check takes no report arguments\n");
      PrintUsage();
      return 2;
    }
    return Check(flags, out_path);
  }
  if (flags.positional().empty()) {
    std::fprintf(stderr, "bench_trajectory: no BENCH report inputs\n");
    PrintUsage();
    return 2;
  }
  return Append(flags, out_path);
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  return potemkin::Run(argc, argv);
}
