// Compares two BENCH_<name>.json perf-trajectory reports (see bench/report.h)
// or two HealthSnapshot JSON files (see src/obs/health_snapshot.h) metric by
// metric and prints the deltas. Exit status encodes the verdict so CI can
// distinguish "slower" from "broken":
//
//   0  every shared metric within threshold (or improved)
//   1  at least one metric regressed beyond the threshold
//   2  schema mismatch: unreadable file, missing report keys, no metrics, an
//      unsupported snapshot schema_version, or a baseline metric absent from
//      the candidate
//
// Usage:
//   bench_diff [--threshold=0.10] [--metric-threshold=name=frac ...]
//       baseline.json candidate.json
//
// `--metric-threshold` overrides the global threshold for one metric and may
// repeat (last occurrence of a name wins) — wall-clock throughput metrics
// tolerate more noise than deterministic counts, so CI pins them individually.
//
// Direction is inferred from the metric's unit: rate units ("pkts/s", "MB/s",
// anything ending in "/s") regress when they drop; everything else (ns, us,
// bytes, ...) regresses when it grows. Metrics present only in the candidate
// are listed as new and never fail the diff — reports are allowed to grow.
//
// Like-for-like guard: BENCH reports stamp the host's hardware concurrency
// ("host_threads") and the shard topology they exercised ("shards"). When the
// reports disagree on shards, or they disagree on host_threads and either ran
// a parallel topology (shards > 1), the runs are not comparable — deltas are
// still printed, but regressions are demoted to informational and the exit
// status is 0. Single-threaded reports stay enforced across hosts: wall-clock
// noise there is a threshold problem, not a topology problem.
//
// The parser is the same deliberate string scan as bench_to_json: the report
// schema is flat and fixed, so scanning beats a JSON dependency.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace potemkin {
namespace {

// HealthSnapshot JSON layout version this tool understands (must match
// HealthSnapshot::kSchemaVersion; duplicated here so the tool stays a single
// dependency-free translation unit).
constexpr int kSnapshotSchemaVersion = 1;

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct Report {
  std::string benchmark;
  // hardware_concurrency of the producing host and the shard topology the run
  // exercised; NaN when the report predates the stamps (or is a health
  // snapshot, which has no host identity).
  double host_threads = 0.0 / 0.0;
  double shards = 0.0 / 0.0;
  std::vector<Metric> metrics;
};

std::string ReadAll(const char* path) {
  std::FILE* file = std::fopen(path, "rb");
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(file);
  return text;
}

// Returns the JSON string value following `"key":` inside [from, until).
std::string FindStringValue(const std::string& text, const std::string& key,
                            size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return "";
  }
  size_t cursor = text.find('"', text.find(':', at + needle.size()));
  if (cursor == std::string::npos || cursor >= until) {
    return "";
  }
  std::string value;
  for (++cursor; cursor < until && text[cursor] != '"'; ++cursor) {
    value += text[cursor];
  }
  return value;
}

double FindNumberValue(const std::string& text, const std::string& key,
                       size_t from, size_t until) {
  const std::string needle = "\"" + key + "\"";
  const size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) {
    return std::strtod("nan", nullptr);
  }
  const size_t colon = text.find(':', at + needle.size());
  return std::strtod(text.c_str() + colon + 1, nullptr);
}

// Parses a BENCH report; returns false on any schema violation.
bool ParseReport(const char* path, Report* out) {
  const std::string text = ReadAll(path);
  if (text.empty()) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path);
    return false;
  }
  const size_t metrics = text.find("\"metrics\"");
  const size_t header = metrics == std::string::npos ? text.size() : metrics;
  // A BENCH report names itself with "benchmark"; a HealthSnapshot with
  // "snapshot". Both carry the same flat metric-row array.
  out->benchmark = FindStringValue(text, "benchmark", 0, header);
  out->host_threads = FindNumberValue(text, "host_threads", 0, header);
  out->shards = FindNumberValue(text, "shards", 0, header);
  if (out->benchmark.empty()) {
    out->benchmark = FindStringValue(text, "snapshot", 0, header);
    if (!out->benchmark.empty()) {
      const double version = FindNumberValue(text, "schema_version", 0, header);
      if (!(version == static_cast<double>(kSnapshotSchemaVersion))) {
        std::fprintf(stderr,
                     "bench_diff: %s has unsupported snapshot schema_version "
                     "%g (understood: %d)\n",
                     path, version, kSnapshotSchemaVersion);
        return false;
      }
    }
  }
  if (out->benchmark.empty() || metrics == std::string::npos) {
    std::fprintf(stderr, "bench_diff: %s is not a BENCH report or health "
                 "snapshot (missing \"benchmark\"/\"snapshot\"/\"metrics\")\n",
                 path);
    return false;
  }
  for (size_t open = text.find('{', metrics); open != std::string::npos;
       open = text.find('{', open + 1)) {
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      break;
    }
    Metric metric;
    metric.name = FindStringValue(text, "metric", open, close);
    metric.value = FindNumberValue(text, "value", open, close);
    metric.unit = FindStringValue(text, "unit", open, close);
    if (metric.name.empty() || metric.value != metric.value ||
        metric.unit.empty()) {
      std::fprintf(stderr, "bench_diff: malformed metric entry in %s\n", path);
      return false;
    }
    out->metrics.push_back(std::move(metric));
    open = close;
  }
  if (out->metrics.empty()) {
    std::fprintf(stderr, "bench_diff: no metrics in %s\n", path);
    return false;
  }
  return true;
}

bool HigherIsBetter(const std::string& unit) {
  return unit.size() >= 2 && unit.compare(unit.size() - 2, 2, "/s") == 0;
}

const Metric* Find(const Report& report, const std::string& name) {
  for (const auto& metric : report.metrics) {
    if (metric.name == name) {
      return &metric;
    }
  }
  return nullptr;
}

int Run(int argc, char** argv) {
  double threshold = 0.10;
  std::vector<std::pair<std::string, double>> metric_thresholds;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
      threshold = std::strtod(argv[i] + 12, nullptr);
    } else if (std::strncmp(argv[i], "--metric-threshold=", 19) == 0) {
      const char* spec = argv[i] + 19;
      const char* eq = std::strrchr(spec, '=');
      if (eq == nullptr || eq == spec || eq[1] == '\0') {
        std::fprintf(stderr,
                     "bench_diff: bad --metric-threshold '%s' (want "
                     "name=fraction)\n",
                     spec);
        return 2;
      }
      metric_thresholds.emplace_back(std::string(spec, eq - spec),
                                     std::strtod(eq + 1, nullptr));
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff [--threshold=0.10] "
                 "[--metric-threshold=name=frac ...] baseline.json "
                 "candidate.json\n");
    return 2;
  }
  const auto threshold_for = [&](const std::string& name) {
    double chosen = threshold;
    for (const auto& [metric, frac] : metric_thresholds) {
      if (metric == name) {
        chosen = frac;  // last occurrence wins
      }
    }
    return chosen;
  };

  Report baseline;
  Report candidate;
  if (!ParseReport(paths[0], &baseline) || !ParseReport(paths[1], &candidate)) {
    return 2;
  }
  if (baseline.benchmark != candidate.benchmark) {
    std::fprintf(stderr, "bench_diff: comparing different benchmarks (%s vs %s)\n",
                 baseline.benchmark.c_str(), candidate.benchmark.c_str());
    return 2;
  }

  // NaN != NaN and NaN > 1 is false, so a missing stamp on either side keeps
  // the guard inert.
  const bool shards_differ = baseline.shards == baseline.shards &&
                             candidate.shards == candidate.shards &&
                             baseline.shards != candidate.shards;
  const bool parallel = baseline.shards > 1 || candidate.shards > 1;
  const bool threads_differ = baseline.host_threads == baseline.host_threads &&
                              candidate.host_threads == candidate.host_threads &&
                              baseline.host_threads != candidate.host_threads;
  const bool cross_host = shards_differ || (parallel && threads_differ);
  if (cross_host) {
    std::printf("note: not like-for-like (shards %g vs %g, host_threads %g vs "
                "%g) — regressions reported but not enforced\n",
                baseline.shards, candidate.shards, baseline.host_threads,
                candidate.host_threads);
  }

  std::printf("%-44s %16s %16s %9s\n", "metric", "baseline", "candidate",
              "delta");
  bool regressed = false;
  bool mismatch = false;
  for (const auto& base : baseline.metrics) {
    const Metric* cand = Find(candidate, base.name);
    if (cand == nullptr) {
      std::printf("%-44s %16.4g %16s %9s  MISSING\n", base.name.c_str(),
                  base.value, "-", "-");
      mismatch = true;
      continue;
    }
    const double delta =
        base.value != 0.0 ? (cand->value - base.value) / base.value : 0.0;
    const double limit = threshold_for(base.name);
    const bool worse = HigherIsBetter(base.unit) ? delta < -limit
                                                 : delta > limit;
    std::printf("%-44s %16.4g %16.4g %+8.1f%%%s\n", base.name.c_str(),
                base.value, cand->value, delta * 100.0,
                worse ? "  REGRESSED" : "");
    regressed = regressed || worse;
  }
  for (const auto& cand : candidate.metrics) {
    if (Find(baseline, cand.name) == nullptr) {
      std::printf("%-44s %16s %16.4g %9s  NEW\n", cand.name.c_str(), "-",
                  cand.value, "-");
    }
  }
  if (mismatch) {
    std::fprintf(stderr,
                 "bench_diff: baseline metric(s) missing from candidate\n");
    return 2;
  }
  return regressed && !cross_host ? 1 : 0;
}

}  // namespace
}  // namespace potemkin

int main(int argc, char** argv) {
  return potemkin::Run(argc, argv);
}
